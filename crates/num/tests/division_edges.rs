//! Exhaustive edge-pattern tests for multi-limb division.
//!
//! Knuth algorithm D has a rarely taken "add back" branch (the trial
//! quotient digit overestimates by one) that random testing essentially
//! never reaches. Limb patterns built from boundary values are the classic
//! way to force it; every 96-bit / 64-bit combination of such patterns is
//! checked against `u128` ground truth.

use cai_num::Int;

const PATTERNS: [u32; 6] = [0, 1, 0x7fff_ffff, 0x8000_0000, 0x8000_0001, 0xffff_ffff];

fn int_from_limbs_u128(limbs: &[u32]) -> (Int, u128) {
    let mut value: u128 = 0;
    for &l in limbs.iter().rev() {
        value = (value << 32) | l as u128;
    }
    let int: Int = value.to_string().parse().expect("decimal parses");
    (int, value)
}

#[test]
fn boundary_patterns_divide_exactly_like_u128() {
    let mut checked = 0u64;
    for &a0 in &PATTERNS {
        for &a1 in &PATTERNS {
            for &a2 in &PATTERNS {
                for &b0 in &PATTERNS {
                    for &b1 in &PATTERNS {
                        let (a, av) = int_from_limbs_u128(&[a0, a1, a2]);
                        let (b, bv) = int_from_limbs_u128(&[b0, b1]);
                        if bv == 0 {
                            continue;
                        }
                        let (q, r) = a.div_rem(&b);
                        assert_eq!(
                            q.to_string(),
                            (av / bv).to_string(),
                            "quotient mismatch for {av} / {bv}"
                        );
                        assert_eq!(
                            r.to_string(),
                            (av % bv).to_string(),
                            "remainder mismatch for {av} % {bv}"
                        );
                        checked += 1;
                    }
                }
            }
        }
    }
    assert!(
        checked > 5_000,
        "expected thousands of cases, got {checked}"
    );
}

#[test]
fn four_limb_by_three_limb_patterns() {
    // 128-bit by 96-bit, still within u128 ground truth.
    let picks: [u32; 3] = [1, 0x8000_0000, 0xffff_ffff];
    for &a0 in &picks {
        for &a1 in &picks {
            for &a2 in &picks {
                for &a3 in &picks {
                    for &b0 in &picks {
                        for &b1 in &picks {
                            for &b2 in &picks {
                                let (a, av) = int_from_limbs_u128(&[a0, a1, a2, a3]);
                                let (b, bv) = int_from_limbs_u128(&[b0, b1, b2]);
                                let (q, r) = a.div_rem(&b);
                                assert_eq!(q.to_string(), (av / bv).to_string());
                                assert_eq!(r.to_string(), (av % bv).to_string());
                            }
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn division_by_one_and_self() {
    for s in [
        "1",
        "4294967296",
        "18446744073709551616",
        "340282366920938463463374607431768211455",
    ] {
        let n: Int = s.parse().unwrap();
        let (q, r) = n.div_rem(&Int::one());
        assert_eq!(q, n);
        assert!(r.is_zero());
        let (q, r) = n.div_rem(&n);
        assert!(q.is_one());
        assert!(r.is_zero());
    }
}
