//! Property-based tests for exact arithmetic, cross-checked against i128.

use cai_num::{Int, Rat};
use proptest::prelude::*;

fn int_of(v: i128) -> Int {
    // Build via string to exercise parsing as well.
    v.to_string().parse().expect("decimal i128 parses")
}

proptest! {
    #[test]
    fn add_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let sum = &Int::from(a) + &Int::from(b);
        prop_assert_eq!(sum, int_of(a as i128 + b as i128));
    }

    #[test]
    fn mul_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let prod = &Int::from(a) * &Int::from(b);
        prop_assert_eq!(prod, int_of(a as i128 * b as i128));
    }

    #[test]
    fn div_rem_reconstructs(a in any::<i64>(), b in any::<i64>().prop_filter("nonzero", |b| *b != 0)) {
        let (q, r) = Int::from(a).div_rem(&Int::from(b));
        prop_assert_eq!(&(&q * &Int::from(b)) + &r, Int::from(a));
        prop_assert_eq!(q, Int::from(a / b));
        prop_assert_eq!(r, Int::from(a % b));
    }

    #[test]
    fn parse_display_roundtrip(a in any::<i128>()) {
        let n = int_of(a);
        prop_assert_eq!(n.to_string(), a.to_string());
    }

    #[test]
    fn gcd_divides_both(a in any::<i32>(), b in any::<i32>()) {
        let (a, b) = (Int::from(a), Int::from(b));
        let g = a.gcd(&b);
        if !g.is_zero() {
            prop_assert!((&a % &g).is_zero());
            prop_assert!((&b % &g).is_zero());
        } else {
            prop_assert!(a.is_zero() && b.is_zero());
        }
    }

    #[test]
    fn ordering_matches_i64(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(Int::from(a).cmp(&Int::from(b)), a.cmp(&b));
    }

    #[test]
    fn big_mul_div_roundtrip(a in any::<i128>(), b in any::<i128>().prop_filter("nonzero", |b| *b != 0)) {
        let (ia, ib) = (int_of(a), int_of(b));
        let p = &ia * &ib;
        let (q, r) = p.div_rem(&ib);
        prop_assert_eq!(q, ia);
        prop_assert!(r.is_zero());
    }

    #[test]
    fn rat_field_laws(an in -1000i64..1000, ad in 1i64..100, bn in -1000i64..1000, bd in 1i64..100) {
        let a = Rat::new(Int::from(an), Int::from(ad));
        let b = Rat::new(Int::from(bn), Int::from(bd));
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a + &b) - &b, a.clone());
        if !b.is_zero() {
            prop_assert_eq!(&(&a / &b) * &b, a.clone());
        }
        // distributivity
        let c = Rat::new(Int::from(7), Int::from(3));
        prop_assert_eq!(&c * &(&a + &b), &(&c * &a) + &(&c * &b));
    }

    #[test]
    fn rat_cmp_antisymmetric(an in any::<i32>(), ad in 1i32..1000, bn in any::<i32>(), bd in 1i32..1000) {
        let a = Rat::new(Int::from(an), Int::from(ad));
        let b = Rat::new(Int::from(bn), Int::from(bd));
        let lhs = (an as i64) * (bd as i64);
        let rhs = (bn as i64) * (ad as i64);
        prop_assert_eq!(a.cmp(&b), lhs.cmp(&rhs));
    }
}
