//! Property-based tests for exact arithmetic, cross-checked against i128.
//!
//! Randomized inputs come from the in-tree deterministic [`SplitMix64`]
//! stream (the workspace builds offline, with no external test crates), so
//! every run checks the same cases and a failure is reproducible from the
//! printed seed.

use cai_num::{Int, Rat, SplitMix64};

const CASES: usize = 200;

fn int_of(v: i128) -> Int {
    // Build via string to exercise parsing as well.
    v.to_string().parse().expect("decimal i128 parses")
}

fn any_i64(g: &mut SplitMix64) -> i64 {
    g.next_u64() as i64
}

fn any_i128(g: &mut SplitMix64) -> i128 {
    ((g.next_u64() as i128) << 64) | g.next_u64() as i128
}

#[test]
fn add_matches_i128() {
    let mut g = SplitMix64::new(0xA001);
    for _ in 0..CASES {
        let (a, b) = (any_i64(&mut g), any_i64(&mut g));
        let sum = &Int::from(a) + &Int::from(b);
        assert_eq!(sum, int_of(a as i128 + b as i128), "a={a} b={b}");
    }
}

#[test]
fn mul_matches_i128() {
    let mut g = SplitMix64::new(0xA002);
    for _ in 0..CASES {
        let (a, b) = (any_i64(&mut g), any_i64(&mut g));
        let prod = &Int::from(a) * &Int::from(b);
        assert_eq!(prod, int_of(a as i128 * b as i128), "a={a} b={b}");
    }
}

#[test]
fn div_rem_reconstructs() {
    let mut g = SplitMix64::new(0xA003);
    for _ in 0..CASES {
        let a = any_i64(&mut g);
        let b = match any_i64(&mut g) {
            0 => 1,
            b => b,
        };
        let (q, r) = Int::from(a).div_rem(&Int::from(b));
        assert_eq!(&(&q * &Int::from(b)) + &r, Int::from(a), "a={a} b={b}");
        assert_eq!(q, Int::from(a / b), "a={a} b={b}");
        assert_eq!(r, Int::from(a % b), "a={a} b={b}");
    }
}

#[test]
fn parse_display_roundtrip() {
    let mut g = SplitMix64::new(0xA004);
    for _ in 0..CASES {
        let a = any_i128(&mut g);
        let n = int_of(a);
        assert_eq!(n.to_string(), a.to_string());
    }
}

#[test]
fn gcd_divides_both() {
    let mut g = SplitMix64::new(0xA005);
    for _ in 0..CASES {
        let (a, b) = (g.next_u64() as i32, g.next_u64() as i32);
        let (a, b) = (Int::from(a), Int::from(b));
        let gcd = a.gcd(&b);
        if !gcd.is_zero() {
            assert!((&a % &gcd).is_zero(), "a={a} gcd={gcd}");
            assert!((&b % &gcd).is_zero(), "b={b} gcd={gcd}");
        } else {
            assert!(a.is_zero() && b.is_zero());
        }
    }
}

#[test]
fn ordering_matches_i64() {
    let mut g = SplitMix64::new(0xA006);
    for _ in 0..CASES {
        let (a, b) = (any_i64(&mut g), any_i64(&mut g));
        assert_eq!(Int::from(a).cmp(&Int::from(b)), a.cmp(&b), "a={a} b={b}");
    }
}

#[test]
fn big_mul_div_roundtrip() {
    let mut g = SplitMix64::new(0xA007);
    for _ in 0..CASES {
        let a = any_i128(&mut g);
        let b = match any_i128(&mut g) {
            0 => 1,
            b => b,
        };
        let (ia, ib) = (int_of(a), int_of(b));
        let p = &ia * &ib;
        let (q, r) = p.div_rem(&ib);
        assert_eq!(q, ia, "a={a} b={b}");
        assert!(r.is_zero(), "a={a} b={b}");
    }
}

#[test]
fn rat_field_laws() {
    let mut g = SplitMix64::new(0xA008);
    for _ in 0..CASES {
        let an = g.range_i64(-1000, 1000);
        let ad = g.range_i64(1, 100);
        let bn = g.range_i64(-1000, 1000);
        let bd = g.range_i64(1, 100);
        let a = Rat::new(Int::from(an), Int::from(ad));
        let b = Rat::new(Int::from(bn), Int::from(bd));
        assert_eq!(&a + &b, &b + &a);
        assert_eq!(&a * &b, &b * &a);
        assert_eq!(&(&a + &b) - &b, a.clone());
        if !b.is_zero() {
            assert_eq!(&(&a / &b) * &b, a.clone());
        }
        // distributivity
        let c = Rat::new(Int::from(7), Int::from(3));
        assert_eq!(&c * &(&a + &b), &(&c * &a) + &(&c * &b));
    }
}

#[test]
fn rat_cmp_antisymmetric() {
    let mut g = SplitMix64::new(0xA009);
    for _ in 0..CASES {
        let an = g.next_u64() as i32;
        let ad = g.range_i64(1, 1000) as i32;
        let bn = g.next_u64() as i32;
        let bd = g.range_i64(1, 1000) as i32;
        let a = Rat::new(Int::from(an), Int::from(ad));
        let b = Rat::new(Int::from(bn), Int::from(bd));
        let lhs = (an as i64) * (bd as i64);
        let rhs = (bn as i64) * (ad as i64);
        assert_eq!(a.cmp(&b), lhs.cmp(&rhs), "a={an}/{ad} b={bn}/{bd}");
    }
}
