//! Property-based tests for the linear-arithmetic domains, cross-checked
//! against concrete rational valuations.

use cai_core::AbstractDomain;
use cai_linarith::{AffExpr, AffineEq, Polyhedra};
use cai_num::Rat;
use cai_term::{Atom, Conj, Term, Var, VarSet};
use proptest::prelude::*;
use std::collections::BTreeMap;

const NVARS: usize = 4;

fn var(i: usize) -> Var {
    Var::named(&format!("q{i}"))
}

/// A random affine expression with small integer coefficients.
fn aff() -> impl Strategy<Value = Vec<i64>> {
    // coefficients for q0..q3 plus a constant
    proptest::collection::vec(-3i64..4, NVARS + 1)
}

fn to_expr(coeffs: &[i64]) -> AffExpr {
    let mut e = AffExpr::constant(Rat::from(coeffs[NVARS]));
    for (i, &c) in coeffs.iter().take(NVARS).enumerate() {
        e.add_var(var(i), &Rat::from(c));
    }
    e
}

fn to_eq_atom(coeffs: &[i64]) -> Atom {
    Atom::eq(to_expr(coeffs).to_term(), Term::int(0))
}

fn to_le_atom(coeffs: &[i64]) -> Atom {
    Atom::le(to_expr(coeffs).to_term(), Term::int(0))
}

/// Evaluates an affine expression under an integer valuation.
fn eval(coeffs: &[i64], point: &[i64]) -> i64 {
    coeffs
        .iter()
        .take(NVARS)
        .zip(point)
        .map(|(c, p)| c * p)
        .sum::<i64>()
        + coeffs[NVARS]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any valuation satisfying both affine systems satisfies their hull.
    #[test]
    fn affine_join_is_sound(
        rows_a in proptest::collection::vec(aff(), 1..4),
        rows_b in proptest::collection::vec(aff(), 1..4),
        point in proptest::collection::vec(-5i64..6, NVARS),
    ) {
        let d = AffineEq::new();
        let ea = d.from_conj(&rows_a.iter().map(|r| to_eq_atom(r)).collect());
        let eb = d.from_conj(&rows_b.iter().map(|r| to_eq_atom(r)).collect());
        let j = d.join(&ea, &eb);
        // If the point satisfies side A, it must satisfy the join.
        if rows_a.iter().all(|r| eval(r, &point) == 0) && !ea.is_bottom() {
            for atom in &d.to_conj(&j) {
                prop_assert!(holds_eq(atom, &point), "join atom {atom} fails at {point:?}");
            }
        }
    }

    /// The element implies exactly the row consequences: reduce-to-zero is
    /// validated against satisfying valuations.
    #[test]
    fn affine_implication_respects_models(
        rows in proptest::collection::vec(aff(), 1..4),
        query in aff(),
        point in proptest::collection::vec(-5i64..6, NVARS),
    ) {
        let d = AffineEq::new();
        let e = d.from_conj(&rows.iter().map(|r| to_eq_atom(r)).collect());
        if e.is_bottom() {
            return Ok(());
        }
        // soundness: if implied, every satisfying point satisfies it.
        if d.implies_atom(&e, &to_eq_atom(&query))
            && rows.iter().all(|r| eval(r, &point) == 0)
        {
            prop_assert_eq!(eval(&query, &point), 0);
        }
    }

    /// Projection never mentions the projected variable and is implied.
    #[test]
    fn affine_projection_sound(
        rows in proptest::collection::vec(aff(), 1..4),
        which in 0usize..NVARS,
    ) {
        let d = AffineEq::new();
        let e = d.from_conj(&rows.iter().map(|r| to_eq_atom(r)).collect());
        let vs: VarSet = [var(which)].into_iter().collect();
        let p = d.exists(&e, &vs);
        prop_assert!(!p.vars().contains(&var(which)));
        if !e.is_bottom() {
            for atom in &d.to_conj(&p) {
                prop_assert!(d.implies_atom(&e, atom));
            }
        }
    }

    /// Polyhedra: meet/implication agree with concrete valuations.
    #[test]
    fn poly_implication_respects_models(
        rows in proptest::collection::vec(aff(), 1..4),
        query in aff(),
        point in proptest::collection::vec(-5i64..6, NVARS),
    ) {
        let d = Polyhedra::new();
        let e = d.from_conj(&rows.iter().map(|r| to_le_atom(r)).collect());
        if d.implies_atom(&e, &to_le_atom(&query))
            && rows.iter().all(|r| eval(r, &point) <= 0)
        {
            prop_assert!(
                eval(&query, &point) <= 0,
                "claimed implied but fails at {point:?}"
            );
        }
    }

    /// Polyhedra hull: a point in either polyhedron satisfies the join.
    #[test]
    fn poly_join_is_sound(
        rows_a in proptest::collection::vec(aff(), 1..3),
        rows_b in proptest::collection::vec(aff(), 1..3),
        point in proptest::collection::vec(-5i64..6, NVARS),
    ) {
        let d = Polyhedra::new();
        let ea = d.from_conj(&rows_a.iter().map(|r| to_le_atom(r)).collect());
        let eb = d.from_conj(&rows_b.iter().map(|r| to_le_atom(r)).collect());
        let j = d.join(&ea, &eb);
        let in_a = rows_a.iter().all(|r| eval(r, &point) <= 0);
        let in_b = rows_b.iter().all(|r| eval(r, &point) <= 0);
        if in_a || in_b {
            for atom in &d.to_conj(&j) {
                prop_assert!(
                    holds_le(atom, &point),
                    "join atom {atom} fails at {point:?} (in_a={in_a} in_b={in_b})"
                );
            }
        }
    }

    /// Polyhedra widening is an upper bound of both arguments.
    #[test]
    fn poly_widen_is_upper_bound(
        rows_a in proptest::collection::vec(aff(), 1..3),
        rows_b in proptest::collection::vec(aff(), 1..3),
    ) {
        let d = Polyhedra::new();
        let ea = d.from_conj(&rows_a.iter().map(|r| to_le_atom(r)).collect());
        let eb = d.from_conj(&rows_b.iter().map(|r| to_le_atom(r)).collect());
        let j = d.join(&ea, &eb);
        let w = d.widen(&ea, &j);
        prop_assert!(d.le(&ea, &w));
        prop_assert!(d.le(&j, &w));
    }
}

/// Evaluates an equality atom at an integer point.
fn holds_eq(atom: &Atom, point: &[i64]) -> bool {
    let Atom::Eq(s, t) = atom else { return true };
    eval_term(s, point) == eval_term(t, point)
}

/// Evaluates a `<=` or `=` atom at an integer point.
fn holds_le(atom: &Atom, point: &[i64]) -> bool {
    match atom {
        Atom::Eq(s, t) => eval_term(s, point) == eval_term(t, point),
        Atom::Le(s, t) => eval_term(s, point) <= eval_term(t, point),
        Atom::Pred(..) => true,
    }
}

fn eval_term(t: &Term, point: &[i64]) -> Rat {
    let map: BTreeMap<Var, Rat> =
        (0..NVARS).map(|i| (var(i), Rat::from(point[i]))).collect();
    eval_with(t, &map)
}

fn eval_with(t: &Term, env: &BTreeMap<Var, Rat>) -> Rat {
    match t.kind() {
        cai_term::TermKind::Var(v) => env.get(v).cloned().unwrap_or_else(Rat::zero),
        cai_term::TermKind::Lin(e) => {
            let mut acc = e.constant_part().clone();
            for (atom, c) in e.iter() {
                acc = &acc + &(c * &eval_with(atom, env));
            }
            acc
        }
        cai_term::TermKind::App(..) => panic!("pure linear expected"),
    }
}

/// The `Conj` produced by mapping rows must build without panicking even
/// for degenerate all-zero rows (regression guard).
#[test]
fn degenerate_rows_do_not_panic() {
    let d = AffineEq::new();
    let zero = vec![0i64; NVARS + 1];
    let e = d.from_conj(&Conj::of(to_eq_atom(&zero)));
    assert!(!e.is_bottom());
    let contradictory = {
        let mut c = vec![0i64; NVARS + 1];
        c[NVARS] = 1;
        c
    };
    let e2 = d.from_conj(&Conj::of(to_eq_atom(&contradictory)));
    assert!(e2.is_bottom());
}
