//! Property-based tests for the linear-arithmetic domains, cross-checked
//! against concrete rational valuations.
//!
//! Random systems and valuation points come from the in-tree
//! deterministic [`SplitMix64`] stream (the workspace builds offline, with
//! no external test crates); each test runs a fixed set of seeded cases.

use cai_core::AbstractDomain;
use cai_linarith::{AffExpr, AffineEq, Polyhedra};
use cai_num::{Rat, SplitMix64};
use cai_term::{Atom, Conj, Term, Var, VarSet};
use std::collections::BTreeMap;

const NVARS: usize = 4;
const CASES: usize = 96;

fn var(i: usize) -> Var {
    Var::named(&format!("q{i}"))
}

/// Random small coefficients for q0..q3 plus a constant.
fn aff(g: &mut SplitMix64) -> Vec<i64> {
    (0..NVARS + 1).map(|_| g.range_i64(-3, 4)).collect()
}

fn rows(g: &mut SplitMix64, max: u64) -> Vec<Vec<i64>> {
    (0..1 + g.below(max)).map(|_| aff(g)).collect()
}

/// A random integer valuation point.
fn point(g: &mut SplitMix64) -> Vec<i64> {
    (0..NVARS).map(|_| g.range_i64(-5, 6)).collect()
}

fn to_expr(coeffs: &[i64]) -> AffExpr {
    let mut e = AffExpr::constant(Rat::from(coeffs[NVARS]));
    for (i, &c) in coeffs.iter().take(NVARS).enumerate() {
        e.add_var(var(i), &Rat::from(c));
    }
    e
}

fn to_eq_atom(coeffs: &[i64]) -> Atom {
    Atom::eq(to_expr(coeffs).to_term(), Term::int(0))
}

fn to_le_atom(coeffs: &[i64]) -> Atom {
    Atom::le(to_expr(coeffs).to_term(), Term::int(0))
}

/// Evaluates an affine expression under an integer valuation.
fn eval(coeffs: &[i64], point: &[i64]) -> i64 {
    coeffs
        .iter()
        .take(NVARS)
        .zip(point)
        .map(|(c, p)| c * p)
        .sum::<i64>()
        + coeffs[NVARS]
}

/// Any valuation satisfying both affine systems satisfies their hull.
#[test]
fn affine_join_is_sound() {
    let mut g = SplitMix64::new(0xD001);
    for _ in 0..CASES {
        let rows_a = rows(&mut g, 3);
        let rows_b = rows(&mut g, 3);
        let pt = point(&mut g);
        let d = AffineEq::new();
        let ea = d.from_conj(&rows_a.iter().map(|r| to_eq_atom(r)).collect());
        let eb = d.from_conj(&rows_b.iter().map(|r| to_eq_atom(r)).collect());
        let j = d.join(&ea, &eb);
        // If the point satisfies side A, it must satisfy the join.
        if rows_a.iter().all(|r| eval(r, &pt) == 0) && !ea.is_bottom() {
            for atom in &d.to_conj(&j) {
                assert!(holds_eq(atom, &pt), "join atom {atom} fails at {pt:?}");
            }
        }
    }
}

/// The element implies exactly the row consequences: reduce-to-zero is
/// validated against satisfying valuations.
#[test]
fn affine_implication_respects_models() {
    let mut g = SplitMix64::new(0xD002);
    for _ in 0..CASES {
        let sys = rows(&mut g, 3);
        let query = aff(&mut g);
        let pt = point(&mut g);
        let d = AffineEq::new();
        let e = d.from_conj(&sys.iter().map(|r| to_eq_atom(r)).collect());
        if e.is_bottom() {
            continue;
        }
        // soundness: if implied, every satisfying point satisfies it.
        if d.implies_atom(&e, &to_eq_atom(&query)) && sys.iter().all(|r| eval(r, &pt) == 0) {
            assert_eq!(eval(&query, &pt), 0);
        }
    }
}

/// Projection never mentions the projected variable and is implied.
#[test]
fn affine_projection_sound() {
    let mut g = SplitMix64::new(0xD003);
    for _ in 0..CASES {
        let sys = rows(&mut g, 3);
        let which = g.below(NVARS as u64) as usize;
        let d = AffineEq::new();
        let e = d.from_conj(&sys.iter().map(|r| to_eq_atom(r)).collect());
        let vs: VarSet = [var(which)].into_iter().collect();
        let p = d.exists(&e, &vs);
        assert!(!p.vars().contains(&var(which)));
        if !e.is_bottom() {
            for atom in &d.to_conj(&p) {
                assert!(d.implies_atom(&e, atom));
            }
        }
    }
}

/// Polyhedra: meet/implication agree with concrete valuations.
#[test]
fn poly_implication_respects_models() {
    let mut g = SplitMix64::new(0xD004);
    for _ in 0..CASES {
        let sys = rows(&mut g, 3);
        let query = aff(&mut g);
        let pt = point(&mut g);
        let d = Polyhedra::new();
        let e = d.from_conj(&sys.iter().map(|r| to_le_atom(r)).collect());
        if d.implies_atom(&e, &to_le_atom(&query)) && sys.iter().all(|r| eval(r, &pt) <= 0) {
            assert!(
                eval(&query, &pt) <= 0,
                "claimed implied but fails at {pt:?}"
            );
        }
    }
}

/// Polyhedra hull: a point in either polyhedron satisfies the join.
#[test]
fn poly_join_is_sound() {
    let mut g = SplitMix64::new(0xD005);
    for _ in 0..CASES {
        let rows_a = rows(&mut g, 2);
        let rows_b = rows(&mut g, 2);
        let pt = point(&mut g);
        let d = Polyhedra::new();
        let ea = d.from_conj(&rows_a.iter().map(|r| to_le_atom(r)).collect());
        let eb = d.from_conj(&rows_b.iter().map(|r| to_le_atom(r)).collect());
        let j = d.join(&ea, &eb);
        let in_a = rows_a.iter().all(|r| eval(r, &pt) <= 0);
        let in_b = rows_b.iter().all(|r| eval(r, &pt) <= 0);
        if in_a || in_b {
            for atom in &d.to_conj(&j) {
                assert!(
                    holds_le(atom, &pt),
                    "join atom {atom} fails at {pt:?} (in_a={in_a} in_b={in_b})"
                );
            }
        }
    }
}

/// Polyhedra widening is an upper bound of both arguments.
#[test]
fn poly_widen_is_upper_bound() {
    let mut g = SplitMix64::new(0xD006);
    for _ in 0..CASES {
        let rows_a = rows(&mut g, 2);
        let rows_b = rows(&mut g, 2);
        let d = Polyhedra::new();
        let ea = d.from_conj(&rows_a.iter().map(|r| to_le_atom(r)).collect());
        let eb = d.from_conj(&rows_b.iter().map(|r| to_le_atom(r)).collect());
        let j = d.join(&ea, &eb);
        let w = d.widen(&ea, &j);
        assert!(d.le(&ea, &w));
        assert!(d.le(&j, &w));
    }
}

/// Evaluates an equality atom at an integer point.
fn holds_eq(atom: &Atom, point: &[i64]) -> bool {
    let Atom::Eq(s, t) = atom else { return true };
    eval_term(s, point) == eval_term(t, point)
}

/// Evaluates a `<=` or `=` atom at an integer point.
fn holds_le(atom: &Atom, point: &[i64]) -> bool {
    match atom {
        Atom::Eq(s, t) => eval_term(s, point) == eval_term(t, point),
        Atom::Le(s, t) => eval_term(s, point) <= eval_term(t, point),
        Atom::Pred(..) => true,
    }
}

fn eval_term(t: &Term, point: &[i64]) -> Rat {
    let map: BTreeMap<Var, Rat> = (0..NVARS).map(|i| (var(i), Rat::from(point[i]))).collect();
    eval_with(t, &map)
}

fn eval_with(t: &Term, env: &BTreeMap<Var, Rat>) -> Rat {
    match t.kind() {
        cai_term::TermKind::Var(v) => env.get(v).cloned().unwrap_or_else(Rat::zero),
        cai_term::TermKind::Lin(e) => {
            let mut acc = e.constant_part().clone();
            for (atom, c) in e.iter() {
                acc = &acc + &(c * &eval_with(atom, env));
            }
            acc
        }
        cai_term::TermKind::App(..) => panic!("pure linear expected"),
    }
}

/// The `Conj` produced by mapping rows must build without panicking even
/// for degenerate all-zero rows (regression guard).
#[test]
fn degenerate_rows_do_not_panic() {
    let d = AffineEq::new();
    let zero = vec![0i64; NVARS + 1];
    let e = d.from_conj(&Conj::of(to_eq_atom(&zero)));
    assert!(!e.is_bottom());
    let contradictory = {
        let mut c = vec![0i64; NVARS + 1];
        c[NVARS] = 1;
        c
    };
    let e2 = d.from_conj(&Conj::of(to_eq_atom(&contradictory)));
    assert!(e2.is_bottom());
}
