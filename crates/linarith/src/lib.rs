//! Linear-arithmetic abstract domains for the `cai` workspace.
//!
//! Two logical lattices over the theory of linear arithmetic (§2 of
//! *Combining Abstract Interpreters*):
//!
//! - [`AffineEq`] — Karr's affine-equalities analysis (linear arithmetic
//!   with only equality, \[16, 18\]): elements are affine subspaces in
//!   reduced row-echelon form; joins are affine hulls.
//! - [`Polyhedra`] — the linear-inequalities analysis (reference \[7\] of the paper): elements are
//!   convex rational polyhedra in constraint form; implication and
//!   projection use exact Fourier–Motzkin elimination, and the join is the
//!   convex hull via the standard lifting.
//!
//! Both implement [`cai_core::AbstractDomain`], including the operators
//! the combination framework needs: `VE_T` (implied variable equalities,
//! via Gaussian canonical forms) and `Alternate_T` (definition recovery,
//! via projection and solving).

mod affine;
mod expr;
mod fm;
mod matrix;
mod poly;

pub use affine::{AffineElem, AffineEq};
pub use expr::{preferential_definitions, AffExpr, NotAffineError};
pub use fm::{eliminate, implies_le, infeasible, project, simplify, Ineq};
pub use matrix::{null_space, rref, Matrix};
pub use poly::{PolyElem, Polyhedra};
