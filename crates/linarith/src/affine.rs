//! Karr's affine-equalities domain: the logical lattice over the theory of
//! linear arithmetic *with only equality* (paper §2; Karr 1976 [16],
//! Müller-Olm & Seidl [18]).

use crate::expr::AffExpr;
use crate::matrix::{null_space, Matrix};
use cai_core::{AbstractDomain, Partition, TheoryProps};
use cai_num::Rat;
use cai_term::{Atom, Conj, Sig, Term, TheoryTag, Var, VarSet};
use std::collections::BTreeMap;
use std::fmt;

/// An element of the affine-equalities domain: an affine subspace of
/// `Q^Vars`, represented as a conjunction of equalities `eᵢ = 0` in reduced
/// row-echelon form, or bottom.
///
/// Variables not mentioned are unconstrained.
#[derive(Clone, PartialEq, Debug)]
pub struct AffineElem {
    /// `None` is bottom. Rows are sorted by pivot (their leading variable);
    /// each pivot has coefficient 1 and is eliminated from all other rows.
    rows: Option<Vec<AffExpr>>,
}

impl AffineElem {
    /// The top element (no constraints).
    pub fn top() -> AffineElem {
        AffineElem {
            rows: Some(Vec::new()),
        }
    }

    /// The bottom element.
    pub fn bottom() -> AffineElem {
        AffineElem { rows: None }
    }

    /// Returns `true` if this is bottom.
    pub fn is_bottom(&self) -> bool {
        self.rows.is_none()
    }

    /// The number of independent equalities (the rank).
    pub fn rank(&self) -> usize {
        self.rows.as_ref().map_or(0, Vec::len)
    }

    /// The equality rows (empty for bottom).
    pub fn rows(&self) -> &[AffExpr] {
        self.rows.as_deref().unwrap_or(&[])
    }

    /// The variables constrained by the element.
    pub fn vars(&self) -> VarSet {
        let mut out = VarSet::new();
        for r in self.rows() {
            out.extend(r.vars());
        }
        out
    }

    /// Reduces an expression modulo the row space: the canonical
    /// representative of `e`'s residue class over the element.
    pub fn reduce(&self, e: &AffExpr) -> AffExpr {
        let mut out = e.clone();
        for row in self.rows() {
            // Rows are non-constant by construction; skip rather than panic
            // if the invariant is ever violated.
            let Some(p) = row.leading_var() else { continue };
            let c = out.coeff(p);
            if !c.is_zero() {
                out.add_scaled(&-c, row);
            }
        }
        out
    }

    /// Conjoins the equality `e = 0`, maintaining the RREF invariant.
    pub fn insert(&mut self, e: &AffExpr) {
        let Some(rows) = self.rows.as_mut() else {
            return; // bottom stays bottom
        };
        let mut e = e.clone();
        // Reduce by existing rows.
        for row in rows.iter() {
            let Some(p) = row.leading_var() else { continue };
            let c = e.coeff(p);
            if !c.is_zero() {
                e.add_scaled(&-c, row);
            }
        }
        if e.is_zero() {
            return;
        }
        if e.is_constant() {
            self.rows = None; // contradiction such as 0 = 1
            return;
        }
        let e = e.normalize_leading();
        let Some(pivot) = e.leading_var() else { return };
        // Eliminate the new pivot from existing rows.
        for row in rows.iter_mut() {
            let c = row.coeff(pivot);
            if !c.is_zero() {
                row.add_scaled(&-c, &e);
            }
        }
        // The pivot was just eliminated from every row, so the search
        // normally misses; inserting at a hit position is equally correct.
        let idx = match rows.binary_search_by(|r| r.leading_var().cmp(&Some(pivot))) {
            Ok(i) | Err(i) => i,
        };
        rows.insert(idx, e);
    }

    /// Builds an element from arbitrary equality expressions.
    pub fn from_rows(exprs: impl IntoIterator<Item = AffExpr>) -> AffineElem {
        let mut out = AffineElem::top();
        for e in exprs {
            out.insert(&e);
        }
        out
    }

    /// The generator representation over the universe `u`: a particular
    /// point and a basis of direction vectors (all as `Var → Rat` maps;
    /// absent entries are zero).
    fn generators(&self, u: &VarSet) -> (BTreeMap<Var, Rat>, Vec<BTreeMap<Var, Rat>>) {
        let rows = self.rows();
        let pivots: VarSet = rows.iter().filter_map(AffExpr::leading_var).collect();
        // Particular point: all free variables 0, pivots forced.
        let mut point = BTreeMap::new();
        for r in rows {
            let Some(p) = r.leading_var() else { continue };
            let v = -r.constant_part().clone();
            if !v.is_zero() {
                point.insert(p, v);
            }
        }
        // One direction per free variable of the universe.
        let mut basis = Vec::new();
        for &f in u.iter().filter(|v| !pivots.contains(v)) {
            let mut dir = BTreeMap::new();
            dir.insert(f, Rat::one());
            for r in rows {
                let c = r.coeff(f);
                if !c.is_zero() {
                    let Some(p) = r.leading_var() else { continue };
                    dir.insert(p, -c);
                }
            }
            basis.push(dir);
        }
        (point, basis)
    }

    /// The affine hull of two elements (the join in the logical lattice of
    /// linear equalities).
    pub fn hull(&self, other: &AffineElem) -> AffineElem {
        if self.is_bottom() {
            return other.clone();
        }
        if other.is_bottom() {
            return self.clone();
        }
        let mut u = self.vars();
        u.extend(other.vars());
        let order: Vec<Var> = u.iter().copied().collect();
        let n = order.len();
        let (p1, mut dirs) = self.generators(&u);
        let (p2, dirs2) = other.generators(&u);
        dirs.extend(dirs2);
        // Direction p2 - p1 connects the two subspaces.
        let mut connect = BTreeMap::new();
        for &v in &order {
            let d = &p2.get(&v).cloned().unwrap_or_else(Rat::zero)
                - &p1.get(&v).cloned().unwrap_or_else(Rat::zero);
            if !d.is_zero() {
                connect.insert(v, d);
            }
        }
        dirs.push(connect);
        // Find all (α, c) with α·p1 + c = 0 and α·dir = 0 for every dir:
        // the null space of the condition matrix over unknowns (α_v.., c).
        let mut m: Matrix = Vec::with_capacity(dirs.len() + 1);
        let mut prow: Vec<Rat> = order
            .iter()
            .map(|v| p1.get(v).cloned().unwrap_or_else(Rat::zero))
            .collect();
        prow.push(Rat::one()); // coefficient of c
        m.push(prow);
        for dir in &dirs {
            let mut row: Vec<Rat> = order
                .iter()
                .map(|v| dir.get(v).cloned().unwrap_or_else(Rat::zero))
                .collect();
            row.push(Rat::zero());
            m.push(row);
        }
        let alphas = null_space(&m, n + 1);
        let mut out = AffineElem::top();
        for alpha in alphas {
            let mut e = AffExpr::constant(alpha[n].clone());
            for (i, &v) in order.iter().enumerate() {
                e.add_var(v, &alpha[i]);
            }
            out.insert(&e);
        }
        out
    }

    /// Projects out the variables of `vs` (existential quantification).
    pub fn project(&self, vs: &VarSet) -> AffineElem {
        if self.is_bottom() {
            return AffineElem::bottom();
        }
        let mut rows: Vec<AffExpr> = self.rows().to_vec();
        for &v in vs {
            // Find a row mentioning v; use it to eliminate v elsewhere.
            let Some(i) = rows.iter().position(|r| !r.coeff(v).is_zero()) else {
                continue;
            };
            let row = rows.remove(i);
            let def = {
                // v = -(row - c·v)/c
                let c = row.coeff(v);
                let mut rest = row.clone();
                rest.add_var(v, &-c.clone());
                rest.scale(&-c.recip())
            };
            for r in rows.iter_mut() {
                *r = r.substitute(v, &def);
            }
        }
        AffineElem::from_rows(rows)
    }

    /// Decides `self ⇒ e = 0`.
    pub fn implies_zero(&self, e: &AffExpr) -> bool {
        self.is_bottom() || self.reduce(e).is_zero()
    }

    /// Decides `self ⇒ e <= 0`. On an affine subspace an affine function is
    /// either constant or unbounded in both directions, so this holds iff
    /// the canonical residue is a non-positive constant.
    pub fn implies_nonpositive(&self, e: &AffExpr) -> bool {
        if self.is_bottom() {
            return true;
        }
        let r = self.reduce(e);
        r.is_constant() && !r.constant_part().is_positive()
    }
}

impl fmt::Display for AffineElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.rows {
            None => f.write_str("false"),
            Some(rows) if rows.is_empty() => f.write_str("true"),
            Some(rows) => {
                let mut first = true;
                for r in rows {
                    let Some(p) = r.leading_var() else { continue };
                    if !first {
                        f.write_str(" & ")?;
                    }
                    first = false;
                    write!(f, "{p} = {}", r.solve_for(p))?;
                }
                Ok(())
            }
        }
    }
}

/// The affine-equalities abstract domain (Karr's analysis), a logical
/// lattice over the theory of linear arithmetic with only equality.
///
/// Inequality facts are *soundly ignored* on meet (dropping a conjunct
/// over-approximates) and decided against the affine hull on implication
/// queries. Use [`Polyhedra`](crate::Polyhedra) for full inequality
/// support.
///
/// ```
/// use cai_core::AbstractDomain;
/// use cai_linarith::AffineEq;
/// use cai_term::parse::Vocab;
///
/// let vocab = Vocab::standard();
/// let d = AffineEq::new();
/// let e = d.from_conj(&vocab.parse_conj("x = y + 1 & y = 2*z")?);
/// assert!(d.implies_atom(&e, &vocab.parse_atom("x = 2*z + 1")?));
/// # Ok::<(), cai_term::parse::ParseError>(())
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct AffineEq;

impl AffineEq {
    /// Creates the domain.
    pub fn new() -> AffineEq {
        AffineEq
    }
}

fn atom_difference(atom: &Atom) -> Option<AffExpr> {
    match atom {
        Atom::Eq(s, t) | Atom::Le(s, t) => AffExpr::difference(s, t).ok(),
        Atom::Pred(..) => None,
    }
}

impl AbstractDomain for AffineEq {
    type Elem = AffineElem;

    fn sig(&self) -> Sig {
        Sig::single(TheoryTag::LINARITH)
    }

    fn props(&self) -> TheoryProps {
        TheoryProps::nelson_oppen()
    }

    fn top(&self) -> AffineElem {
        AffineElem::top()
    }

    fn bottom(&self) -> AffineElem {
        AffineElem::bottom()
    }

    fn is_bottom(&self, e: &AffineElem) -> bool {
        e.is_bottom()
    }

    fn meet_atom(&self, e: &AffineElem, atom: &Atom) -> AffineElem {
        match (atom, atom_difference(atom)) {
            (Atom::Eq(..), Some(diff)) => {
                let mut out = e.clone();
                out.insert(&diff);
                out
            }
            // The equalities-only lattice cannot represent an inequality;
            // dropping it is the sound over-approximation — except that a
            // constant contradiction (e.g. 1 <= 0) still yields bottom.
            (Atom::Le(..), Some(diff)) => {
                if diff.is_constant() && diff.constant_part().is_positive() {
                    AffineElem::bottom()
                } else {
                    e.clone()
                }
            }
            // Out-of-signature and non-linear atoms cannot be represented;
            // dropping the conjunct is the sound over-approximation.
            _ => e.clone(),
        }
    }

    fn implies_atom(&self, e: &AffineElem, atom: &Atom) -> bool {
        if e.is_bottom() {
            return true;
        }
        match (atom, atom_difference(atom)) {
            (Atom::Eq(..), Some(diff)) => e.implies_zero(&diff),
            (Atom::Le(..), Some(diff)) => e.implies_nonpositive(&diff),
            // "not known to hold" is the sound answer for atoms outside
            // the signature.
            _ => false,
        }
    }

    fn join(&self, a: &AffineElem, b: &AffineElem) -> AffineElem {
        a.hull(b)
    }

    fn exists(&self, e: &AffineElem, vars: &VarSet) -> AffineElem {
        e.project(vars)
    }

    fn var_equalities(&self, e: &AffineElem) -> Partition {
        let mut p = Partition::new();
        if e.is_bottom() {
            return p;
        }
        // Two variables are equal iff their canonical residues coincide.
        let mut by_canon: BTreeMap<String, Var> = BTreeMap::new();
        for v in e.vars() {
            let canon = e.reduce(&AffExpr::var(v));
            let key = canon.to_term().to_string();
            match by_canon.get(&key) {
                Some(&first) => {
                    p.union(first, v);
                }
                None => {
                    by_canon.insert(key, v);
                }
            }
        }
        p
    }

    fn alternate(&self, e: &AffineElem, y: Var, avoid: &VarSet) -> Option<Term> {
        if e.is_bottom() {
            return Some(Term::int(0));
        }
        // Fast path: the canonical residue of `y` may already avoid the
        // forbidden variables (common when `y` is a pivot).
        let canon = e.reduce(&AffExpr::var(y));
        if canon.coeff(y).is_zero() && canon.iter().all(|(v, _)| *v != y && !avoid.contains(v)) {
            return Some(canon.to_term());
        }
        let mut elim = avoid.clone();
        elim.remove(&y);
        let projected = e.project(&elim);
        let row = projected.rows().iter().find(|r| !r.coeff(y).is_zero())?;
        let t = row.solve_for(y);
        debug_assert!(!t.vars().contains(&y));
        Some(t)
    }

    fn alternates(&self, e: &AffineElem, targets: &VarSet, avoid: &VarSet) -> BTreeMap<Var, Term> {
        let mut out = BTreeMap::new();
        if e.is_bottom() {
            for &y in targets {
                out.insert(y, Term::int(0));
            }
            return out;
        }
        out.extend(crate::expr::preferential_definitions(
            e.rows(),
            targets,
            avoid,
        ));
        out
    }

    fn to_conj(&self, e: &AffineElem) -> Conj {
        if e.is_bottom() {
            return Conj::of(Atom::eq(Term::int(0), Term::int(1)));
        }
        e.rows()
            .iter()
            .filter_map(|r| {
                let p = r.leading_var()?;
                Some(Atom::eq(Term::var(p), r.solve_for(p)))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cai_term::parse::Vocab;

    fn d() -> AffineEq {
        AffineEq::new()
    }

    fn elem(src: &str) -> AffineElem {
        let v = Vocab::standard();
        d().from_conj(&v.parse_conj(src).unwrap())
    }

    fn atom(src: &str) -> Atom {
        Vocab::standard().parse_atom(src).unwrap()
    }

    #[test]
    fn meet_and_implies() {
        let e = elem("x = y + 1 & y = z - 2");
        assert!(d().implies_atom(&e, &atom("x = z - 1")));
        assert!(!d().implies_atom(&e, &atom("x = z")));
    }

    #[test]
    fn contradiction_is_bottom() {
        let e = elem("x = 1 & x = 2");
        assert!(e.is_bottom());
        // Bottom implies everything.
        assert!(d().implies_atom(&e, &atom("x = 77")));
    }

    #[test]
    fn join_is_affine_hull() {
        // {x=0, y=0} ⊔ {x=1, y=1}  =  {x = y}
        let a = elem("x = 0 & y = 0");
        let b = elem("x = 1 & y = 1");
        let j = d().join(&a, &b);
        assert!(d().implies_atom(&j, &atom("x = y")));
        assert!(!d().implies_atom(&j, &atom("x = 0")));
    }

    #[test]
    fn figure3_join() {
        // J(x=a & y=b, x=b & y=a) = (x + y = a + b), paper Figure 3.
        let a = elem("x = a & y = b");
        let b = elem("x = b & y = a");
        let j = d().join(&a, &b);
        assert!(d().implies_atom(&j, &atom("x + y = a + b")));
        assert!(!d().implies_atom(&j, &atom("x = a")));
        assert_eq!(j.rank(), 1);
    }

    #[test]
    fn join_with_bottom_is_identity() {
        let a = elem("x = 5");
        assert_eq!(d().join(&a, &AffineElem::bottom()), a);
        assert_eq!(d().join(&AffineElem::bottom(), &a), a);
    }

    #[test]
    fn project_eliminates() {
        let e = elem("x = y + 1 & z = 2*y");
        let vs: VarSet = [Var::named("y")].into_iter().collect();
        let p = d().exists(&e, &vs);
        assert!(d().implies_atom(&p, &atom("z = 2*x - 2")));
        assert!(p.vars().iter().all(|v| v.name() != "y"));
    }

    #[test]
    fn project_unconstrained_is_noop() {
        let e = elem("x = 1");
        let vs: VarSet = [Var::named("nope")].into_iter().collect();
        assert_eq!(d().exists(&e, &vs), e);
    }

    #[test]
    fn var_equalities_found() {
        let e = elem("x = z + 0 & y = z & w = z + 1");
        let p = d().var_equalities(&e);
        assert!(p.same(Var::named("x"), Var::named("y")));
        assert!(!p.same(Var::named("x"), Var::named("w")));
    }

    #[test]
    fn alternate_finds_definition() {
        let e = elem("y = 2*a + b & a = c");
        let avoid: VarSet = [Var::named("a")].into_iter().collect();
        let t = d().alternate(&e, Var::named("y"), &avoid).unwrap();
        // y = 2c + b avoids a and y.
        assert_eq!(t.to_string(), "b + 2*c");
    }

    #[test]
    fn alternate_respects_avoid() {
        let e = elem("y = x + 1");
        let avoid: VarSet = [Var::named("x")].into_iter().collect();
        assert!(d().alternate(&e, Var::named("y"), &avoid).is_none());
    }

    #[test]
    fn inequalities_handled_soundly() {
        let e = elem("x = y");
        // Meet with an inequality is dropped (sound weakening) ...
        let e2 = d().meet_atom(&e, &atom("x <= 5"));
        assert_eq!(e2, e);
        // ... but implication of inequalities consistent with the hull works.
        assert!(d().implies_atom(&e, &atom("x <= y")));
        assert!(d().implies_atom(&e, &atom("x >= y")));
        assert!(!d().implies_atom(&e, &atom("x <= 5")));
        // And a constant contradiction is detected.
        assert!(d().meet_atom(&e, &atom("1 <= 0")).is_bottom());
    }

    #[test]
    fn to_conj_roundtrip() {
        let e = elem("x = y + 1 & z = 3");
        let c = d().to_conj(&e);
        let e2 = d().from_conj(&c);
        assert_eq!(e, e2);
    }

    #[test]
    fn rational_coefficients() {
        let e = elem("2*x = y & y = 3");
        assert!(d().implies_atom(&e, &atom("x = 3/2")));
    }
}
