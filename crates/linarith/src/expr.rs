//! Affine expressions over variables — the internal representation of the
//! linear-arithmetic domains.

use cai_num::Rat;
use cai_term::{LinExpr, Term, TermKind, Var, VarSet};
use std::collections::BTreeMap;
use std::fmt;

/// An affine expression `Σ cᵥ·v + k` with rational coefficients over
/// variables only.
///
/// Unlike [`LinExpr`], whose atoms may be arbitrary non-arithmetic terms,
/// an `AffExpr` is the *pure* linear-arithmetic fragment: converting a term
/// that still contains foreign function symbols fails.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct AffExpr {
    coeffs: BTreeMap<Var, Rat>,
    konst: Rat,
}

/// The error returned when a term is not purely linear over variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotAffineError(pub String);

impl fmt::Display for NotAffineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "term `{}` is not affine over variables", self.0)
    }
}

impl std::error::Error for NotAffineError {}

impl AffExpr {
    /// The zero expression.
    pub fn zero() -> AffExpr {
        AffExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: Rat) -> AffExpr {
        AffExpr {
            coeffs: BTreeMap::new(),
            konst: c,
        }
    }

    /// The expression `1·v`.
    pub fn var(v: Var) -> AffExpr {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(v, Rat::one());
        AffExpr {
            coeffs,
            konst: Rat::zero(),
        }
    }

    /// Converts a pure linear-arithmetic term.
    ///
    /// # Errors
    ///
    /// Returns [`NotAffineError`] if the term contains a function
    /// application (only variables and arithmetic structure are allowed).
    pub fn try_from_term(t: &Term) -> Result<AffExpr, NotAffineError> {
        match t.kind() {
            TermKind::Var(v) => Ok(AffExpr::var(*v)),
            TermKind::App(..) => Err(NotAffineError(t.to_string())),
            TermKind::Lin(e) => {
                let mut out = AffExpr::constant(e.constant_part().clone());
                for (atom, coeff) in e.iter() {
                    match atom.as_var() {
                        Some(v) => out.add_var(v, coeff),
                        None => return Err(NotAffineError(t.to_string())),
                    }
                }
                Ok(out)
            }
        }
    }

    /// The difference `s - t` of two pure terms.
    ///
    /// # Errors
    ///
    /// Returns [`NotAffineError`] if either term is not affine.
    pub fn difference(s: &Term, t: &Term) -> Result<AffExpr, NotAffineError> {
        Ok(AffExpr::try_from_term(s)?.sub(&AffExpr::try_from_term(t)?))
    }

    /// Adds `coeff · v` in place.
    pub fn add_var(&mut self, v: Var, coeff: &Rat) {
        if coeff.is_zero() {
            return;
        }
        let entry = self.coeffs.entry(v).or_insert_with(Rat::zero);
        *entry = &*entry + coeff;
        if entry.is_zero() {
            self.coeffs.remove(&v);
        }
    }

    /// The coefficient of `v` (zero if absent).
    pub fn coeff(&self, v: Var) -> Rat {
        self.coeffs.get(&v).cloned().unwrap_or_else(Rat::zero)
    }

    /// The constant part.
    pub fn constant_part(&self) -> &Rat {
        &self.konst
    }

    /// Returns `true` if the expression has no variables.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Returns `true` if the expression is the constant zero.
    pub fn is_zero(&self) -> bool {
        self.is_constant() && self.konst.is_zero()
    }

    /// The variable with the smallest interning index (the pivot choice),
    /// if any.
    pub fn leading_var(&self) -> Option<Var> {
        self.coeffs.keys().next().copied()
    }

    /// Iterates over `(variable, coefficient)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, &Rat)> {
        self.coeffs.iter()
    }

    /// The number of variables with nonzero coefficient.
    pub fn num_vars(&self) -> usize {
        self.coeffs.len()
    }

    /// The variables of the expression.
    pub fn vars(&self) -> VarSet {
        self.coeffs.keys().copied().collect()
    }

    /// `self + other`.
    pub fn add(&self, other: &AffExpr) -> AffExpr {
        let mut out = self.clone();
        out.konst = &out.konst + &other.konst;
        for (v, c) in &other.coeffs {
            out.add_var(*v, c);
        }
        out
    }

    /// `self - other`.
    pub fn sub(&self, other: &AffExpr) -> AffExpr {
        self.add(&other.scale(&-Rat::one()))
    }

    /// `c · self`.
    pub fn scale(&self, c: &Rat) -> AffExpr {
        if c.is_zero() {
            return AffExpr::zero();
        }
        AffExpr {
            coeffs: self.coeffs.iter().map(|(v, k)| (*v, k * c)).collect(),
            konst: &self.konst * c,
        }
    }

    /// Adds `factor · other` in place (the Gaussian elimination step).
    pub fn add_scaled(&mut self, factor: &Rat, other: &AffExpr) {
        if factor.is_zero() {
            return;
        }
        self.konst = &self.konst + &(&other.konst * factor);
        for (v, c) in &other.coeffs {
            self.add_var(*v, &(c * factor));
        }
    }

    /// Divides so the leading coefficient becomes one.
    ///
    /// # Panics
    ///
    /// Panics if the expression is constant.
    pub fn normalize_leading(&self) -> AffExpr {
        let lead = self.leading_var().expect("normalize_leading on constant");
        let c = self.coeff(lead);
        self.scale(&c.recip())
    }

    /// Scales positively so coefficients are canonical for deduplication:
    /// the leading coefficient becomes ±1 with its original sign.
    pub fn normalize_positive(&self) -> AffExpr {
        match self.leading_var() {
            None => self.clone(),
            Some(v) => {
                let c = self.coeff(v).abs();
                self.scale(&c.recip())
            }
        }
    }

    /// Renders the expression as a [`Term`].
    pub fn to_term(&self) -> Term {
        let mut e = LinExpr::constant(self.konst.clone());
        for (v, c) in &self.coeffs {
            e = e.add_atom(Term::var(*v), c);
        }
        Term::lin(e)
    }

    /// Solves `self = 0` for `v`, returning the term `t` with `v = t`.
    ///
    /// # Panics
    ///
    /// Panics if `v` has coefficient zero.
    pub fn solve_for(&self, v: Var) -> Term {
        let c = self.coeff(v);
        assert!(!c.is_zero(), "cannot solve for absent variable {v}");
        // v = -(self - c·v) / c
        let mut rest = self.clone();
        rest.add_var(v, &-c.clone());
        rest.scale(&-c.recip()).to_term()
    }

    /// Substitutes `v := e` (where `e` is the affine definition of `v`).
    pub fn substitute(&self, v: Var, e: &AffExpr) -> AffExpr {
        let c = self.coeff(v);
        if c.is_zero() {
            return self.clone();
        }
        let mut out = self.clone();
        out.add_var(v, &-c.clone());
        out.add_scaled(&c, e);
        out
    }
}

/// Computes, for as many `targets` as possible, definitions `y = t` implied
/// by the equality system `rows` with `Vars(t) ∩ avoid = ∅`
/// (`targets ⊆ avoid`) — the batched `Alternate_T` for linear arithmetic.
///
/// One Gaussian elimination with avoid-preferred pivoting serves every
/// target: a target has an avoid-free definition iff it becomes a pivot
/// whose row remainder is avoid-free, because the remainder ranges over
/// free columns and free columns admit no implied equalities.
pub fn preferential_definitions(
    rows: &[AffExpr],
    targets: &VarSet,
    avoid: &VarSet,
) -> BTreeMap<Var, Term> {
    let prefer = |v: &Var| (usize::from(!avoid.contains(v)), *v);
    let mut echelon: Vec<(Var, AffExpr)> = Vec::new(); // (pivot, row)
    for row in rows {
        let mut r = row.clone();
        for (p, er) in &echelon {
            let c = r.coeff(*p);
            if !c.is_zero() {
                r.add_scaled(&-c, er);
            }
        }
        let Some(pivot) = r.vars().into_iter().min_by_key(prefer) else {
            continue; // redundant (or inconsistent) row
        };
        let r = r.scale(&r.coeff(pivot).recip());
        for (_, er) in echelon.iter_mut() {
            let c = er.coeff(pivot);
            if !c.is_zero() {
                er.add_scaled(&-c, &r);
            }
        }
        echelon.push((pivot, r));
    }
    let mut out = BTreeMap::new();
    for (p, r) in &echelon {
        if targets.contains(p) && r.vars().iter().all(|v| v == p || !avoid.contains(v)) {
            out.insert(*p, r.solve_for(*p));
        }
    }
    out
}

impl fmt::Display for AffExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_term())
    }
}

impl fmt::Debug for AffExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cai_term::parse::Vocab;

    fn expr(s: &str) -> AffExpr {
        let v = Vocab::standard();
        AffExpr::try_from_term(&v.parse_term(s).unwrap()).unwrap()
    }

    #[test]
    fn conversion_and_rejection() {
        assert_eq!(expr("2*x + y - 3").to_term().to_string(), "2*x + y - 3");
        let v = Vocab::standard();
        let t = v.parse_term("F(x) + 1").unwrap();
        assert!(AffExpr::try_from_term(&t).is_err());
    }

    #[test]
    fn arithmetic_cancels() {
        let e = expr("2*x + y").sub(&expr("2*x"));
        assert_eq!(e, expr("y"));
        assert!(expr("x").sub(&expr("x")).is_zero());
    }

    #[test]
    fn solve_for_variable() {
        // 2x - y + 4 = 0  =>  x = (y - 4)/2
        let e = expr("2*x - y + 4");
        let t = e.solve_for(Var::named("x"));
        assert_eq!(t.to_string(), "1/2*y - 2");
    }

    #[test]
    fn substitute_definition() {
        // x + y, with x := z - 1  =>  z - 1 + y
        let e = expr("x + y").substitute(Var::named("x"), &expr("z - 1"));
        assert_eq!(e, expr("y + z - 1"));
    }

    #[test]
    fn add_scaled_is_elimination() {
        // (x + 2y) - 2*(y + 1) = x - 2
        let mut e = expr("x + 2*y");
        e.add_scaled(&-Rat::from(2i64), &expr("y + 1"));
        assert_eq!(e, expr("x - 2"));
    }
}
