//! The linear-inequalities (polyhedra) domain: the logical lattice over the
//! full theory of linear arithmetic (paper §2; Cousot & Halbwachs [7]).
//!
//! Elements are conjunctions of equalities and non-strict inequalities
//! represented in constraint form. Implication and projection use exact
//! Fourier–Motzkin elimination; the join is the convex hull via the
//! standard lifting (`x = y + z`, `A y <= λ b`, `C z <= μ d`, `λ + μ = 1`,
//! `λ, μ >= 0`, projected back onto `x`).

use crate::affine::AffineElem;
use crate::expr::AffExpr;
use crate::fm::{self, Ineq};
use cai_core::{AbstractDomain, Budget, Partition, TheoryProps};
use cai_num::Rat;
use cai_term::{Atom, Conj, Sig, Term, TheoryTag, Var, VarSet};
use std::collections::BTreeMap;
use std::fmt;

/// An element of the [`Polyhedra`] domain: a (possibly unbounded) convex
/// rational polyhedron in constraint form, or bottom.
#[derive(Clone, PartialEq, Debug)]
pub struct PolyElem {
    /// `None` is bottom; otherwise the equalities (in RREF, via
    /// [`AffineElem`]) plus the inequalities `e <= 0`, reduced modulo the
    /// equalities.
    state: Option<PolyState>,
}

#[derive(Clone, PartialEq, Debug)]
struct PolyState {
    eqs: AffineElem,
    ineqs: Vec<AffExpr>, // each meaning `e <= 0`, non-strict
}

impl PolyElem {
    /// The top element.
    pub fn top() -> PolyElem {
        PolyElem {
            state: Some(PolyState {
                eqs: AffineElem::top(),
                ineqs: Vec::new(),
            }),
        }
    }

    /// The bottom element.
    pub fn bottom() -> PolyElem {
        PolyElem { state: None }
    }

    /// Returns `true` if this is bottom.
    pub fn is_bottom(&self) -> bool {
        self.state.is_none()
    }

    /// The equality part.
    pub fn equalities(&self) -> &[AffExpr] {
        self.state.as_ref().map_or(&[], |s| s.eqs.rows())
    }

    /// The inequality rows (`e <= 0` each).
    pub fn inequalities(&self) -> &[AffExpr] {
        self.state.as_ref().map_or(&[], |s| &s.ineqs)
    }

    /// The variables mentioned.
    pub fn vars(&self) -> VarSet {
        let mut out = VarSet::new();
        if let Some(s) = &self.state {
            out.extend(s.eqs.vars());
            for i in &s.ineqs {
                out.extend(i.vars());
            }
        }
        out
    }

    /// The full constraint system as (non-strict) inequalities, equalities
    /// expanded into complementary pairs.
    fn rows(&self) -> Vec<Ineq> {
        let Some(s) = &self.state else {
            // An explicitly infeasible row.
            return vec![Ineq::le(AffExpr::constant(Rat::one()))];
        };
        let mut rows = Vec::with_capacity(s.eqs.rows().len() * 2 + s.ineqs.len());
        for e in s.eqs.rows() {
            rows.push(Ineq::le(e.clone()));
            rows.push(Ineq::le(e.scale(&-Rat::one())));
        }
        for i in &s.ineqs {
            rows.push(Ineq::le(i.clone()));
        }
        rows
    }

    /// Builds an element from raw equalities and inequality rows,
    /// normalizing: inequalities are reduced modulo the equalities, implied
    /// equalities (tight inequality pairs) are promoted, redundant rows are
    /// pruned, and infeasibility collapses to bottom.
    ///
    /// Governed by a [`Budget`]. On exhaustion the
    /// remaining normalization (tight-pair promotion, redundancy pruning,
    /// deep feasibility checks) is skipped and the rows are kept as they
    /// are: the result describes the *same* set of points, merely less
    /// canonically, so every downstream implication stays sound — at worst
    /// an infeasible system is reported as non-bottom, which only loses
    /// precision.
    fn assemble_budgeted(eqs: AffineElem, ineqs: Vec<AffExpr>, budget: &Budget) -> PolyElem {
        let mut eqs = eqs;
        let mut pending: Vec<AffExpr> = ineqs;
        loop {
            if eqs.is_bottom() {
                return PolyElem::bottom();
            }
            // Reduce inequalities modulo the equalities; constants resolve.
            let mut rows: Vec<Ineq> = Vec::new();
            for e in &pending {
                let r = eqs.reduce(e);
                if r.is_constant() {
                    if r.constant_part().is_positive() {
                        return PolyElem::bottom();
                    }
                    continue;
                }
                rows.push(Ineq::le(r));
            }
            let Some(rows) = fm::simplify(rows) else {
                return PolyElem::bottom();
            };
            if !budget.tick(1 + rows.len() as u64) {
                budget.degrade("poly/assemble", "kept rows without normalization");
                return PolyElem {
                    state: Some(PolyState {
                        eqs,
                        ineqs: rows.into_iter().map(|r| r.expr).collect(),
                    }),
                };
            }
            if fm::infeasible_budgeted(rows.clone(), budget) {
                return PolyElem::bottom();
            }
            // Promote tight inequalities (those whose reverse is implied)
            // to equalities.
            let mut promoted = Vec::new();
            let mut kept = Vec::new();
            for r in &rows {
                // A tight inequality (whose reverse is also implied) is an
                // equality in disguise; `rows` may include `r` itself, which
                // never implies its own reverse.
                let reverse = r.expr.scale(&-Rat::one());
                if fm::implies_le_budgeted(&rows, &reverse, budget) {
                    promoted.push(r.expr.clone());
                } else {
                    kept.push(r.expr.clone());
                }
            }
            if promoted.is_empty() {
                // Drop rows implied by the remaining ones (redundancy).
                let all: Vec<Ineq> = kept.iter().cloned().map(Ineq::le).collect();
                let mut survivors: Vec<AffExpr> = Vec::new();
                for (i, e) in kept.iter().enumerate() {
                    let others: Vec<Ineq> = all
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != i)
                        .map(|(_, q)| q.clone())
                        .collect();
                    if !fm::implies_le_budgeted(&others, e, budget) {
                        survivors.push(e.clone());
                    }
                }
                return PolyElem {
                    state: Some(PolyState {
                        eqs,
                        ineqs: survivors,
                    }),
                };
            }
            for p in promoted {
                eqs.insert(&p);
            }
            pending = kept;
        }
    }

    /// Decides `self ⇒ e <= 0`.
    pub fn implies_nonpositive(&self, e: &AffExpr) -> bool {
        self.implies_nonpositive_budgeted(e, &Budget::unlimited())
    }

    /// [`PolyElem::implies_nonpositive`] governed by a [`Budget`];
    /// exhaustion yields `false` ("unknown"), never a spurious `true`.
    pub fn implies_nonpositive_budgeted(&self, e: &AffExpr, budget: &Budget) -> bool {
        if self.is_bottom() {
            return true;
        }
        fm::implies_le_budgeted(&self.rows(), e, budget)
    }

    /// Decides `self ⇒ e = 0`.
    pub fn implies_zero(&self, e: &AffExpr) -> bool {
        self.implies_zero_budgeted(e, &Budget::unlimited())
    }

    /// [`PolyElem::implies_zero`] governed by a [`Budget`]; exhaustion
    /// yields `false` ("unknown").
    pub fn implies_zero_budgeted(&self, e: &AffExpr, budget: &Budget) -> bool {
        self.implies_nonpositive_budgeted(e, budget)
            && self.implies_nonpositive_budgeted(&e.scale(&-Rat::one()), budget)
    }
}

impl fmt::Display for PolyElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.state {
            None => f.write_str("false"),
            Some(s) => {
                let mut first = true;
                if !s.eqs.rows().is_empty() {
                    write!(f, "{}", s.eqs)?;
                    first = false;
                }
                for i in &s.ineqs {
                    if !first {
                        f.write_str(" & ")?;
                    }
                    first = false;
                    // e <= 0 shown as `vars <= -const`.
                    let k = i.constant_part().clone();
                    let mut lhs = i.clone();
                    lhs = lhs.sub(&AffExpr::constant(k.clone()));
                    write!(f, "{} <= {}", lhs.to_term(), -k)?;
                }
                if first {
                    f.write_str("true")?;
                }
                Ok(())
            }
        }
    }
}

/// The polyhedra abstract domain over the full theory of linear arithmetic
/// (equalities and non-strict inequalities).
///
/// ```
/// use cai_core::AbstractDomain;
/// use cai_linarith::Polyhedra;
/// use cai_term::parse::Vocab;
///
/// let vocab = Vocab::standard();
/// let d = Polyhedra::new();
/// let e = d.from_conj(&vocab.parse_conj("x <= y & y <= z")?);
/// assert!(d.implies_atom(&e, &vocab.parse_atom("x <= z")?));
/// # Ok::<(), cai_term::parse::ParseError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct Polyhedra {
    budget: Budget,
}

impl Polyhedra {
    /// Creates the domain with an unlimited budget.
    pub fn new() -> Polyhedra {
        Polyhedra::default()
    }

    /// Governs every operation of this domain by `budget` (clone the one
    /// budget shared across the whole analysis).
    pub fn with_budget(mut self, budget: Budget) -> Polyhedra {
        self.budget = budget;
        self
    }

    /// The governing budget.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Translates an `Eq`/`Le` atom into its `lhs - rhs` form; atoms
    /// outside linear arithmetic yield `None` (handled by degrading, not
    /// panicking — the products filter atoms by signature, so this only
    /// fires on misuse, which the degradation log records).
    fn atom_diff(&self, atom: &Atom, site: &'static str) -> Option<AffExpr> {
        match atom {
            Atom::Eq(a, b) | Atom::Le(a, b) => match AffExpr::difference(a, b) {
                Ok(diff) => Some(diff),
                Err(err) => {
                    self.budget
                        .degrade(site, format!("non-linear atom `{atom}`: {err}"));
                    None
                }
            },
            Atom::Pred(..) => {
                self.budget.degrade(
                    site,
                    format!("atom `{atom}` outside the linarith signature"),
                );
                None
            }
        }
    }
}

impl AbstractDomain for Polyhedra {
    type Elem = PolyElem;

    fn sig(&self) -> Sig {
        Sig::single(TheoryTag::LINARITH)
    }

    fn props(&self) -> TheoryProps {
        TheoryProps::nelson_oppen()
    }

    fn top(&self) -> PolyElem {
        PolyElem::top()
    }

    fn bottom(&self) -> PolyElem {
        PolyElem::bottom()
    }

    fn is_bottom(&self, e: &PolyElem) -> bool {
        e.is_bottom()
    }

    fn meet_atom(&self, e: &PolyElem, atom: &Atom) -> PolyElem {
        let Some(s) = &e.state else {
            return PolyElem::bottom();
        };
        let Some(diff) = self.atom_diff(atom, "poly/meet_atom") else {
            // Sound: `e` alone over-approximates `e ∧ atom`.
            return e.clone();
        };
        let mut eqs = s.eqs.clone();
        let mut ineqs = s.ineqs.clone();
        if matches!(atom, Atom::Eq(..)) {
            eqs.insert(&diff);
        } else {
            ineqs.push(diff);
        }
        PolyElem::assemble_budgeted(eqs, ineqs, &self.budget)
    }

    fn implies_atom(&self, e: &PolyElem, atom: &Atom) -> bool {
        let Some(diff) = self.atom_diff(atom, "poly/implies_atom") else {
            return false; // "unknown" is always sound
        };
        if matches!(atom, Atom::Eq(..)) {
            e.implies_zero_budgeted(&diff, &self.budget)
        } else {
            e.implies_nonpositive_budgeted(&diff, &self.budget)
        }
    }

    fn join(&self, a: &PolyElem, b: &PolyElem) -> PolyElem {
        if a.is_bottom() {
            return b.clone();
        }
        if b.is_bottom() {
            return a.clone();
        }
        // Convex hull via the standard lifting. Universe x; copies y
        // (from a, scaled by λ) and z (from b, scaled by μ).
        let mut universe = a.vars();
        universe.extend(b.vars());
        // The lifting triples the variable count before projecting it back
        // down — charge for it up front and fall back to ⊤ (a sound upper
        // bound of any join) once the budget is gone.
        if !self.budget.tick(1 + universe.len() as u64) {
            self.budget
                .degrade("poly/join", "returned top instead of the convex hull");
            return PolyElem::top();
        }
        let lambda = Var::fresh("lam");
        let mu = Var::fresh("mu");
        let mut ys: BTreeMap<Var, Var> = BTreeMap::new();
        let mut zs: BTreeMap<Var, Var> = BTreeMap::new();
        for &v in &universe {
            ys.insert(v, Var::fresh(&format!("y_{}", v.name())));
            zs.insert(v, Var::fresh(&format!("z_{}", v.name())));
        }
        let rename = |e: &AffExpr, map: &BTreeMap<Var, Var>, scale_var: Var| -> AffExpr {
            // α·x + k <= 0 becomes α·y + k·λ <= 0.
            let mut out = AffExpr::zero();
            for (v, c) in e.iter() {
                out.add_var(map[v], c);
            }
            out.add_var(scale_var, e.constant_part());
            out
        };
        let mut sys: Vec<Ineq> = Vec::new();
        for r in a.rows() {
            sys.push(Ineq::le(rename(&r.expr, &ys, lambda)));
        }
        for r in b.rows() {
            sys.push(Ineq::le(rename(&r.expr, &zs, mu)));
        }
        // x_v = y_v + z_v.
        for &v in &universe {
            let mut e = AffExpr::var(v);
            e.add_var(ys[&v], &-Rat::one());
            e.add_var(zs[&v], &-Rat::one());
            sys.push(Ineq::le(e.clone()));
            sys.push(Ineq::le(e.scale(&-Rat::one())));
        }
        // λ + μ = 1, λ >= 0, μ >= 0.
        let mut lm = AffExpr::var(lambda);
        lm.add_var(mu, &Rat::one());
        lm = lm.add(&AffExpr::constant(-Rat::one()));
        sys.push(Ineq::le(lm.clone()));
        sys.push(Ineq::le(lm.scale(&-Rat::one())));
        sys.push(Ineq::le(AffExpr::var(lambda).scale(&-Rat::one())));
        sys.push(Ineq::le(AffExpr::var(mu).scale(&-Rat::one())));
        // Project the auxiliaries.
        let mut aux: VarSet = [lambda, mu].into_iter().collect();
        aux.extend(ys.values().copied());
        aux.extend(zs.values().copied());
        let Some(rows) = fm::project_budgeted(sys, &aux, &self.budget) else {
            return PolyElem::bottom();
        };
        PolyElem::assemble_budgeted(
            AffineElem::top(),
            rows.into_iter().map(|r| r.expr).collect(),
            &self.budget,
        )
    }

    fn exists(&self, e: &PolyElem, vars: &VarSet) -> PolyElem {
        let Some(s) = &e.state else {
            return PolyElem::bottom();
        };
        // Fourier–Motzkin projection of the full system (equalities as
        // complementary pairs); `assemble` re-derives the equality part
        // from tight pairs.
        let _ = s;
        let Some(rows) = fm::project_budgeted(e.rows(), vars, &self.budget) else {
            return PolyElem::bottom();
        };
        PolyElem::assemble_budgeted(
            AffineElem::top(),
            rows.into_iter().map(|r| r.expr).collect(),
            &self.budget,
        )
    }

    fn var_equalities(&self, e: &PolyElem) -> Partition {
        let mut p = Partition::new();
        let Some(s) = &e.state else {
            return p;
        };
        // Equalities among variables are consequences of the affine hull,
        // which `assemble` keeps explicit in the equality part.
        let mut by_canon: BTreeMap<String, Var> = BTreeMap::new();
        for v in s.eqs.vars() {
            let canon = s.eqs.reduce(&AffExpr::var(v));
            let key = canon.to_term().to_string();
            match by_canon.get(&key) {
                Some(&first) => {
                    p.union(first, v);
                }
                None => {
                    by_canon.insert(key, v);
                }
            }
        }
        p
    }

    fn alternate(&self, e: &PolyElem, y: Var, avoid: &VarSet) -> Option<Term> {
        if e.is_bottom() {
            return Some(Term::int(0));
        }
        let mut elim = avoid.clone();
        elim.remove(&y);
        let projected = self.exists(e, &elim);
        let s = projected.state.as_ref()?;
        let row = s.eqs.rows().iter().find(|r| !r.coeff(y).is_zero())?;
        Some(row.solve_for(y))
    }

    fn alternates(
        &self,
        e: &PolyElem,
        targets: &VarSet,
        avoid: &VarSet,
    ) -> BTreeMap<Var, cai_term::Term> {
        let Some(s) = &e.state else {
            return targets.iter().map(|&y| (y, Term::int(0))).collect();
        };
        // `assemble` keeps implied equalities explicit, so the batched
        // linear-equality resolution applies directly.
        crate::expr::preferential_definitions(s.eqs.rows(), targets, avoid)
    }

    fn widen(&self, a: &PolyElem, b: &PolyElem) -> PolyElem {
        // Standard constraint widening: keep the constraints of `a` that
        // `b` still satisfies.
        if a.is_bottom() {
            return b.clone();
        }
        if b.is_bottom() {
            return a.clone();
        }
        // Exhaustion makes the implication checks answer `false`, which
        // only *drops* constraints: the widening gets weaker, and weaker
        // still terminates (it keeps a subset of `a`'s constraints).
        let mut eqs = AffineElem::top();
        let mut ineqs = Vec::new();
        for r in a.equalities() {
            if b.implies_zero_budgeted(r, &self.budget) {
                eqs.insert(r);
            } else if b.implies_nonpositive_budgeted(r, &self.budget) {
                ineqs.push(r.clone());
            } else if b.implies_nonpositive_budgeted(&r.scale(&-Rat::one()), &self.budget) {
                ineqs.push(r.scale(&-Rat::one()));
            }
        }
        for r in a.inequalities() {
            if b.implies_nonpositive_budgeted(r, &self.budget) {
                ineqs.push(r.clone());
            }
        }
        PolyElem::assemble_budgeted(eqs, ineqs, &self.budget)
    }

    fn narrow(&self, _a: &PolyElem, b: &PolyElem) -> PolyElem {
        // Constraint narrowing by descending iteration: adopt the
        // descended iterate wholesale. The engine calls this with
        // `b ⊑ a`, so `b` already satisfies every constraint of `a` and
        // re-tightens exactly the directions the constraint widening
        // dropped (e.g. the upper bound of a counted loop). Termination
        // does not rest on this operator — the engine bounds the number
        // of narrowing rounds by its own fuel slice.
        b.clone()
    }

    fn to_conj(&self, e: &PolyElem) -> Conj {
        let Some(s) = &e.state else {
            return Conj::of(Atom::eq(Term::int(0), Term::int(1)));
        };
        let mut c = Conj::new();
        for r in s.eqs.rows() {
            let p = r.leading_var().expect("non-constant");
            c.push(Atom::eq(Term::var(p), r.solve_for(p)));
        }
        for i in &s.ineqs {
            let k = i.constant_part().clone();
            let lhs = i.sub(&AffExpr::constant(k.clone()));
            c.push(Atom::le(lhs.to_term(), Term::constant(-k)));
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cai_term::parse::Vocab;

    fn d() -> Polyhedra {
        Polyhedra::new()
    }

    fn elem(src: &str) -> PolyElem {
        let v = Vocab::standard();
        d().from_conj(&v.parse_conj(src).unwrap())
    }

    fn atom(src: &str) -> Atom {
        Vocab::standard().parse_atom(src).unwrap()
    }

    #[test]
    fn transitive_implication() {
        let e = elem("x <= y & y <= z");
        assert!(d().implies_atom(&e, &atom("x <= z")));
        assert!(!d().implies_atom(&e, &atom("x = z")));
    }

    #[test]
    fn tight_pair_becomes_equality() {
        let e = elem("x <= y & y <= x");
        assert!(d().implies_atom(&e, &atom("x = y")));
        let p = d().var_equalities(&e);
        assert!(p.same(Var::named("x"), Var::named("y")));
    }

    #[test]
    fn infeasible_detected() {
        let e = elem("x <= 0 & x >= 1");
        assert!(e.is_bottom());
    }

    #[test]
    fn join_is_convex_hull_interval() {
        // [0,1] ⊔ [3,4] = [0,4] for a single variable.
        let a = elem("0 <= x & x <= 1");
        let b = elem("3 <= x & x <= 4");
        let j = d().join(&a, &b);
        assert!(d().implies_atom(&j, &atom("0 <= x")));
        assert!(d().implies_atom(&j, &atom("x <= 4")));
        assert!(!d().implies_atom(&j, &atom("x <= 3")));
    }

    #[test]
    fn join_of_points_is_segment() {
        // {(0,0)} ⊔ {(2,2)}: x = y and 0 <= x <= 2.
        let a = elem("x = 0 & y = 0");
        let b = elem("x = 2 & y = 2");
        let j = d().join(&a, &b);
        assert!(d().implies_atom(&j, &atom("x = y")));
        assert!(d().implies_atom(&j, &atom("x <= 2")));
        assert!(d().implies_atom(&j, &atom("0 <= x")));
    }

    #[test]
    fn join_of_unbounded_halves() {
        // {x <= 0} ⊔ {x >= 5} = top (hull of two opposite rays is the line).
        let a = elem("x <= 0");
        let b = elem("x >= 5");
        let j = d().join(&a, &b);
        assert!(!d().implies_atom(&j, &atom("x <= 100")));
        assert!(!d().implies_atom(&j, &atom("x >= -100")));
    }

    #[test]
    fn exists_projects() {
        let e = elem("x <= y & y <= z & z <= x + 1");
        let vs: VarSet = [Var::named("y")].into_iter().collect();
        let p = d().exists(&e, &vs);
        assert!(d().implies_atom(&p, &atom("x <= z")));
        assert!(d().implies_atom(&p, &atom("z <= x + 1")));
        assert!(p.vars().iter().all(|v| v.name() != "y"));
    }

    #[test]
    fn alternate_through_inequalities() {
        // x <= y & y <= x gives y = x; alternate for y avoiding {} is x.
        let e = elem("x <= y & y <= x");
        let t = d().alternate(&e, Var::named("y"), &VarSet::new()).unwrap();
        assert_eq!(t.to_string(), "x");
    }

    #[test]
    fn widen_keeps_stable_constraints() {
        let a = elem("0 <= x & x <= 1");
        let b = elem("0 <= x & x <= 2");
        let w = d().widen(&a, &b);
        assert!(d().implies_atom(&w, &atom("0 <= x")));
        assert!(!d().implies_atom(&w, &atom("x <= 1000")));
    }

    #[test]
    fn figure7_linear_part() {
        // From the Figure 7 example: x <= y & y <= u, eliminating x and y
        // leaves nothing (but with x = F(F(1+y)) the combined operator
        // recovers F(v) <= u; that part is tested at the product level).
        let e = elem("x <= y & y <= u");
        let vs: VarSet = [Var::named("y")].into_iter().collect();
        let p = d().exists(&e, &vs);
        assert!(d().implies_atom(&p, &atom("x <= u")));
    }

    #[test]
    fn to_conj_roundtrip() {
        let e = elem("x = y + 1 & z <= x");
        let c = d().to_conj(&e);
        let e2 = d().from_conj(&c);
        assert_eq!(e, e2);
    }

    #[test]
    fn bounded_sum() {
        let e = elem("0 <= x & x <= 2 & 0 <= y & y <= 3");
        assert!(d().implies_atom(&e, &atom("x + y <= 5")));
        assert!(!d().implies_atom(&e, &atom("x + y <= 4")));
    }
}
