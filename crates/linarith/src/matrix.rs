//! Dense exact-rational matrices: reduced row-echelon form and null spaces.
//!
//! Used by the affine-equalities domain to convert between the constraint
//! representation (rows of the RREF) and the generator representation
//! (particular solution + basis) when computing affine hulls (Karr's join).

use cai_num::Rat;

/// A dense matrix of rationals (row major).
pub type Matrix = Vec<Vec<Rat>>;

/// Brings `m` into reduced row-echelon form in place and returns the pivot
/// column of each (nonzero) row, in order. Zero rows are removed.
pub fn rref(m: &mut Matrix) -> Vec<usize> {
    let rows = m.len();
    if rows == 0 {
        return Vec::new();
    }
    let cols = m[0].len();
    let mut pivots = Vec::new();
    let mut r = 0;
    for c in 0..cols {
        // Find a row at or below r with a nonzero entry in column c.
        let Some(sel) = (r..rows).find(|&i| !m[i][c].is_zero()) else {
            continue;
        };
        m.swap(r, sel);
        let inv = m[r][c].recip();
        for x in &mut m[r] {
            *x = &*x * &inv;
        }
        for i in 0..rows {
            if i != r && !m[i][c].is_zero() {
                let f = m[i][c].clone();
                // Indexing: the update reads row r while writing row i.
                #[allow(clippy::needless_range_loop)]
                for j in 0..cols {
                    let delta = &m[r][j] * &f;
                    m[i][j] = &m[i][j] - &delta;
                }
            }
        }
        pivots.push(c);
        r += 1;
        if r == rows {
            break;
        }
    }
    m.truncate(r);
    pivots
}

/// A basis of the null space `{x | m·x = 0}` for a matrix with `cols`
/// columns. Each returned vector has length `cols`.
pub fn null_space(m: &Matrix, cols: usize) -> Vec<Vec<Rat>> {
    let mut a = m.clone();
    let pivots = rref(&mut a);
    let free: Vec<usize> = (0..cols).filter(|c| !pivots.contains(c)).collect();
    let mut basis = Vec::with_capacity(free.len());
    for &f in &free {
        let mut v = vec![Rat::zero(); cols];
        v[f] = Rat::one();
        for (row, &p) in a.iter().zip(&pivots) {
            // pivot value = -coefficient of the free column in this row.
            v[p] = -row[f].clone();
        }
        basis.push(v);
    }
    basis
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i64) -> Rat {
        Rat::from(v)
    }

    fn mat(rows: &[&[i64]]) -> Matrix {
        rows.iter()
            .map(|row| row.iter().map(|&x| r(x)).collect())
            .collect()
    }

    #[test]
    fn rref_identifies_rank() {
        let mut m = mat(&[&[1, 2, 3], &[2, 4, 6], &[1, 0, 1]]);
        let pivots = rref(&mut m);
        assert_eq!(pivots, vec![0, 1]);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn rref_of_identity_is_identity() {
        let mut m = mat(&[&[0, 1], &[1, 0]]);
        let pivots = rref(&mut m);
        assert_eq!(pivots, vec![0, 1]);
        assert_eq!(m, mat(&[&[1, 0], &[0, 1]]));
    }

    #[test]
    fn null_space_solves() {
        // x + y - z = 0, y + z = 0  →  basis for one free variable.
        let m = mat(&[&[1, 1, -1], &[0, 1, 1]]);
        let basis = null_space(&m, 3);
        assert_eq!(basis.len(), 1);
        for b in &basis {
            for row in &m {
                let dot = row
                    .iter()
                    .zip(b)
                    .fold(Rat::zero(), |acc, (a, x)| &acc + &(a * x));
                assert!(dot.is_zero());
            }
        }
    }

    #[test]
    fn null_space_of_zero_matrix_is_full() {
        let m: Matrix = vec![vec![Rat::zero(); 4]];
        let basis = null_space(&m, 4);
        assert_eq!(basis.len(), 4);
    }

    #[test]
    fn null_space_of_full_rank_is_empty() {
        let m = mat(&[&[1, 0], &[0, 1]]);
        assert!(null_space(&m, 2).is_empty());
    }
}
