//! Fourier–Motzkin elimination over exact rationals.
//!
//! The inequality domain uses this engine for feasibility, implication,
//! projection, and (via the standard lifting) convex hulls.

use crate::expr::AffExpr;
use cai_core::Budget;
use cai_num::Rat;
use cai_term::{Var, VarSet};
use std::collections::BTreeMap;

/// A linear inequality `expr <= 0` (or `expr < 0` when `strict`).
#[derive(Clone, PartialEq, Debug)]
pub struct Ineq {
    /// The left-hand side of `expr ⋈ 0`.
    pub expr: AffExpr,
    /// `true` for `<`, `false` for `<=`.
    pub strict: bool,
}

impl Ineq {
    /// A non-strict inequality `expr <= 0`.
    pub fn le(expr: AffExpr) -> Ineq {
        Ineq {
            expr,
            strict: false,
        }
    }

    /// A strict inequality `expr < 0`.
    pub fn lt(expr: AffExpr) -> Ineq {
        Ineq { expr, strict: true }
    }

    /// Is this constant inequality violated (e.g. `1 <= 0` or `0 < 0`)?
    ///
    /// Returns `None` if the inequality is not constant.
    pub fn constant_violation(&self) -> Option<bool> {
        if !self.expr.is_constant() {
            return None;
        }
        let k = self.expr.constant_part();
        Some(if self.strict {
            !k.is_negative()
        } else {
            k.is_positive()
        })
    }
}

/// Deduplicates inequalities that differ only in their constant, keeping
/// the tightest, and drops trivially satisfied constant rows.
/// Returns `None` if a constant row is violated (infeasible system).
pub fn simplify(rows: Vec<Ineq>) -> Option<Vec<Ineq>> {
    // Key: the normalized variable part; value: (constant, strict) of the
    // tightest instance seen.
    let mut best: BTreeMap<String, (AffExpr, Rat, bool)> = BTreeMap::new();
    for row in rows {
        if let Some(violated) = row.constant_violation() {
            if violated {
                return None;
            }
            continue; // trivially true
        }
        let norm = row.expr.normalize_positive();
        let k = norm.constant_part().clone();
        let mut varpart = norm.clone();
        varpart.drop_constant();
        let key = varpart.to_term().to_string();
        match best.get_mut(&key) {
            None => {
                best.insert(key, (varpart, k, row.strict));
            }
            Some((_, bk, bs)) => {
                // `varpart + k <= 0` is tighter for larger k.
                if k > *bk || (k == *bk && row.strict && !*bs) {
                    *bk = k;
                    *bs = row.strict;
                }
            }
        }
    }
    Some(
        best.into_values()
            .map(|(varpart, k, strict)| {
                let expr = varpart.add(&AffExpr::constant(k));
                Ineq { expr, strict }
            })
            .collect(),
    )
}

impl AffExpr {
    /// Zeroes the constant part in place (helper for [`simplify`]).
    fn drop_constant(&mut self) {
        let k = self.constant_part().clone();
        *self = self.sub(&AffExpr::constant(k));
    }
}

/// Eliminates `v` from the system by combining every positive-coefficient
/// row with every negative-coefficient row.
pub fn eliminate(rows: Vec<Ineq>, v: Var) -> Vec<Ineq> {
    let mut zero = Vec::new();
    let mut pos = Vec::new();
    let mut neg = Vec::new();
    for r in rows {
        let c = r.expr.coeff(v);
        if c.is_zero() {
            zero.push(r);
        } else if c.is_positive() {
            pos.push(r);
        } else {
            neg.push(r);
        }
    }
    cai_obs::counter!("linarith/fm/eliminations").incr();
    cai_obs::counter!("linarith/fm/row-combinations").add((pos.len() * neg.len()) as u64);
    for p in &pos {
        let a = p.expr.coeff(v);
        let pn = p.expr.scale(&a.recip());
        for n in &neg {
            let b = n.expr.coeff(v);
            let nn = n.expr.scale(&(-b).recip());
            zero.push(Ineq {
                expr: pn.add(&nn),
                strict: p.strict || n.strict,
            });
        }
    }
    zero
}

/// Above this many rows, [`project`] interleaves exact redundancy pruning
/// between eliminations — Fourier–Motzkin output is notoriously dominated
/// by redundant rows, and without pruning the intermediate systems can
/// blow up combinatorially even when the true projection is tiny.
const PRUNE_THRESHOLD: usize = 24;

/// Row budget for the capped feasibility checks used *inside* pruning;
/// exceeding it conservatively treats the row under test as irredundant.
const PRUNE_BUDGET: usize = 2000;

/// Feasibility check with a hard cap on intermediate system size.
/// `Some(true)` = infeasible, `Some(false)` = feasible, `None` = the cap
/// was exceeded (unknown).
fn infeasible_capped(mut rows: Vec<Ineq>, cap: usize) -> Option<bool> {
    let mut remaining = VarSet::new();
    for r in &rows {
        remaining.extend(r.expr.vars());
    }
    let mut remaining: Vec<Var> = remaining.into_iter().collect();
    rows = match simplify(rows) {
        None => return Some(true),
        Some(r) => r,
    };
    while !remaining.is_empty() {
        // Same min-fan-out heuristic as `project` — elimination order is
        // the difference between linear and exponential behaviour here.
        let (idx, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let (mut p, mut n) = (0usize, 0usize);
                for r in &rows {
                    let c = r.expr.coeff(v);
                    if c.is_positive() {
                        p += 1;
                    } else if c.is_negative() {
                        n += 1;
                    }
                }
                (i, p * n)
            })
            .min_by_key(|&(_, cost)| cost)
            .expect("remaining non-empty");
        let v = remaining.swap_remove(idx);
        rows = match simplify(eliminate(rows, v)) {
            None => return Some(true),
            Some(r) => r,
        };
        if rows.len() > cap {
            return None;
        }
    }
    Some(rows.iter().any(|r| r.constant_violation().unwrap_or(false)))
}

/// Drops rows provably implied by the remaining ones (exact, but each
/// check runs under [`PRUNE_BUDGET`]; rows whose check exceeds the budget
/// are conservatively kept, so the result is always equivalent).
fn prune_redundant(rows: Vec<Ineq>) -> Vec<Ineq> {
    let mut kept: Vec<Ineq> = Vec::new();
    for i in 0..rows.len() {
        let candidate = &rows[i];
        let mut others: Vec<Ineq> = kept.clone();
        others.extend_from_slice(&rows[i + 1..]);
        others.push(Ineq {
            expr: candidate.expr.scale(&-Rat::one()),
            strict: !candidate.strict,
        });
        match infeasible_capped(others, PRUNE_BUDGET) {
            Some(true) => {} // implied by the rest: drop
            _ => kept.push(candidate.clone()),
        }
    }
    kept
}

/// Substitutes away every variable of `remaining` that is pinned by an
/// *equality* (a complementary non-strict row pair): Gaussian elimination
/// is linear where Fourier–Motzkin would square the system. Mutates both
/// arguments; `remaining` keeps only the variables FM still has to handle.
fn substitute_equalities(rows: &mut Vec<Ineq>, remaining: &mut Vec<Var>) {
    loop {
        // Index the normalized non-strict rows to find complementary pairs.
        let mut keys: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
        for (i, r) in rows.iter().enumerate() {
            if !r.strict {
                keys.insert(r.expr.normalize_positive().to_term().to_string(), i);
            }
        }
        let mut found: Option<(Var, usize)> = None;
        'search: for (i, r) in rows.iter().enumerate() {
            if r.strict {
                continue;
            }
            let neg = r.expr.scale(&-Rat::one()).normalize_positive();
            if !keys.contains_key(&neg.to_term().to_string()) {
                continue;
            }
            for v in remaining.iter() {
                if !r.expr.coeff(*v).is_zero() {
                    found = Some((*v, i));
                    break 'search;
                }
            }
        }
        let Some((v, i)) = found else { return };
        // r.expr = 0 holds; solve for v and substitute everywhere.
        let c = r_coeff(&rows[i], v);
        let mut def = rows[i].expr.clone();
        def.add_var(v, &-c.clone());
        let def = def.scale(&-c.recip()); // v = def
        for r in rows.iter_mut() {
            let k = r.expr.coeff(v);
            if !k.is_zero() {
                let mut e = r.expr.clone();
                e.add_var(v, &-k.clone());
                e.add_scaled(&k, &def);
                r.expr = e;
            }
        }
        remaining.retain(|&u| u != v);
        if let Some(pruned) = simplify(std::mem::take(rows)) {
            *rows = pruned;
        } else {
            // Infeasible: represent with an explicit violated row so the
            // caller's simplify detects it.
            *rows = vec![Ineq::le(AffExpr::constant(Rat::one()))];
            return;
        }
    }
}

fn r_coeff(r: &Ineq, v: Var) -> Rat {
    r.expr.coeff(v)
}

/// Projects the system onto the complement of `vars` (eliminating each
/// variable, cheapest first, with redundancy pruning between steps).
/// Returns `None` if infeasibility is detected along the way.
pub fn project(rows: Vec<Ineq>, vars: &VarSet) -> Option<Vec<Ineq>> {
    project_budgeted(rows, vars, &Budget::unlimited())
}

/// [`project`] governed by a [`Budget`]: each elimination round ticks in
/// proportion to the current system size. On exhaustion the remaining
/// eliminations are replaced by simply *dropping* every row that still
/// mentions a variable of `vars` — each kept row is implied by the input
/// system and free of `vars`, so the result over-approximates the exact
/// projection (sound; consequences carried only by dropped rows are lost).
pub fn project_budgeted(mut rows: Vec<Ineq>, vars: &VarSet, budget: &Budget) -> Option<Vec<Ineq>> {
    let mut remaining: Vec<Var> = vars.iter().copied().collect();
    rows = simplify(rows)?;
    substitute_equalities(&mut rows, &mut remaining);
    rows = simplify(rows)?;
    while !remaining.is_empty() {
        cai_obs::counter!("fuel/linarith.project").add(1 + rows.len() as u64);
        if !budget.tick(1 + rows.len() as u64) {
            budget.degrade(
                "fm/project",
                format!(
                    "dropped rows mentioning {} uneliminated variables",
                    remaining.len()
                ),
            );
            rows.retain(|r| vars.iter().all(|&v| r.expr.coeff(v).is_zero()));
            return Some(rows);
        }
        // Pick the variable minimizing the pos×neg fan-out.
        let (idx, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let (mut p, mut n) = (0usize, 0usize);
                for r in &rows {
                    let c = r.expr.coeff(v);
                    if c.is_positive() {
                        p += 1;
                    } else if c.is_negative() {
                        n += 1;
                    }
                }
                (i, p * n)
            })
            .min_by_key(|&(_, cost)| cost)
            .expect("remaining non-empty");
        let v = remaining.swap_remove(idx);
        rows = simplify(eliminate(rows, v))?;
        if rows.len() > PRUNE_THRESHOLD {
            rows = prune_redundant(rows);
        }
    }
    Some(rows)
}

/// Returns `true` if the system has no rational solution.
pub fn infeasible(rows: Vec<Ineq>) -> bool {
    infeasible_budgeted(rows, &Budget::unlimited())
}

/// [`infeasible`] governed by a [`Budget`]. On exhaustion the degraded
/// projection may hide a contradiction, in which case this answers `false`
/// ("not known infeasible") — the sound direction for every caller.
pub fn infeasible_budgeted(rows: Vec<Ineq>, budget: &Budget) -> bool {
    let mut all_vars = VarSet::new();
    for r in &rows {
        all_vars.extend(r.expr.vars());
    }
    match project_budgeted(rows, &all_vars, budget) {
        None => true,
        Some(rest) => rest.iter().any(|r| r.constant_violation().unwrap_or(false)),
    }
}

/// Decides whether the system implies `expr <= 0` (non-strict): holds iff
/// conjoining the strict negation `-expr < 0` is infeasible.
pub fn implies_le(rows: &[Ineq], expr: &AffExpr) -> bool {
    implies_le_budgeted(rows, expr, &Budget::unlimited())
}

/// [`implies_le`] governed by a [`Budget`]; exhaustion yields `false`
/// ("unknown"), never a spurious `true`.
pub fn implies_le_budgeted(rows: &[Ineq], expr: &AffExpr, budget: &Budget) -> bool {
    let mut sys = rows.to_vec();
    sys.push(Ineq::lt(expr.scale(&-Rat::one())));
    infeasible_budgeted(sys, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cai_term::parse::Vocab;

    fn e(src: &str) -> AffExpr {
        let v = Vocab::standard();
        AffExpr::try_from_term(&v.parse_term(src).unwrap()).unwrap()
    }

    #[test]
    fn basic_infeasibility() {
        // x <= 0 and -x + 1 <= 0 (i.e. x >= 1): infeasible.
        assert!(infeasible(vec![Ineq::le(e("x")), Ineq::le(e("1 - x"))]));
        // x <= 0 and x >= 0: feasible (x = 0).
        assert!(!infeasible(vec![Ineq::le(e("x")), Ineq::le(e("0 - x"))]));
        // x < 0 and x > 0: infeasible.
        assert!(infeasible(vec![Ineq::lt(e("x")), Ineq::lt(e("0 - x"))]));
        // strict pair around a point: x < 1 and x > 1.
        assert!(infeasible(vec![Ineq::lt(e("x - 1")), Ineq::lt(e("1 - x"))]));
    }

    #[test]
    fn strictness_matters_at_boundary() {
        // x <= 0 and x >= 0 and x < 0 is infeasible; without the strict row
        // it is feasible.
        assert!(infeasible(vec![
            Ineq::le(e("x")),
            Ineq::le(e("0 - x")),
            Ineq::lt(e("x")),
        ]));
    }

    #[test]
    fn transitivity_via_elimination() {
        // x <= y, y <= z  ⇒  x <= z.
        let sys = vec![Ineq::le(e("x - y")), Ineq::le(e("y - z"))];
        assert!(implies_le(&sys, &e("x - z")));
        assert!(!implies_le(&sys, &e("z - x")));
    }

    #[test]
    fn projection_keeps_consequences() {
        // x <= y <= z, project y: x <= z survives.
        let sys = vec![Ineq::le(e("x - y")), Ineq::le(e("y - z"))];
        let vars: VarSet = [Var::named("y")].into_iter().collect();
        let rest = project(sys, &vars).unwrap();
        assert_eq!(rest.len(), 1);
        assert!(implies_le(&rest, &e("x - z")));
    }

    #[test]
    fn simplify_keeps_tightest() {
        // x <= 5 and x <= 3 collapse to x <= 3.
        let rows = simplify(vec![Ineq::le(e("x - 5")), Ineq::le(e("x - 3"))]).unwrap();
        assert_eq!(rows.len(), 1);
        assert!(implies_le(&rows, &e("x - 3")));
    }

    #[test]
    fn simplify_detects_constant_violation() {
        assert!(simplify(vec![Ineq::le(e("1"))]).is_none());
        assert!(simplify(vec![Ineq::lt(e("0"))]).is_none());
        assert_eq!(simplify(vec![Ineq::le(e("0"))]).unwrap().len(), 0);
    }

    #[test]
    fn bounded_implication() {
        // 0 <= x <= 2 and 0 <= y <= 3 imply x + y <= 5.
        let sys = vec![
            Ineq::le(e("0 - x")),
            Ineq::le(e("x - 2")),
            Ineq::le(e("0 - y")),
            Ineq::le(e("y - 3")),
        ];
        assert!(implies_le(&sys, &e("x + y - 5")));
        assert!(!implies_le(&sys, &e("x + y - 4")));
    }
}
