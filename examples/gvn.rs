//! Global value numbering as abstract interpretation: the standalone
//! uninterpreted-functions domain with the Herbrand (all-operators-
//! uninterpreted) program view — the analysis of Gulwani & Necula that the
//! paper cites as [12].
//!
//! ```sh
//! cargo run --release --example gvn
//! ```

use cai_interp::{herbrand_view, parse_program, Analyzer};
use cai_term::parse::Vocab;
use cai_uf::UfDomain;

fn main() {
    let vocab = Vocab::standard();
    let program = parse_program(
        &vocab,
        "
        // Classic GVN example: equivalent computations along both branches.
        if (*) {
            u := a + b;
            v := a + b;
        } else {
            u := c;
            v := c;
        }
        w := u - v;     // always 0, but GVN only sees syntax:
        assert(u = v);  // provable (both branches compute equal values)
        assert(w = 0);  // NOT provable by GVN (needs arithmetic)

        // Deep structural equivalence through a loop.
        p := H(x, x);
        q := H(x, x);
        while (*) {
            p := H(p, q);
            q := H(q, p);
        }
        assert(p = p);
        ",
    )
    .expect("program parses");

    let domain = UfDomain::new();
    let analysis = Analyzer::new(&domain)
        .with_view(herbrand_view)
        .run(&program);

    println!("program:\n{program}");
    println!("value-numbering facts at exit: {}", analysis.exit);
    for a in &analysis.assertions {
        println!(
            "assert({}) ... {}",
            a.atom,
            if a.verified {
                "VERIFIED"
            } else {
                "not proved (needs arithmetic)"
            }
        );
    }
    println!(
        "\nCombining this domain with linear arithmetic (see the\n\
         product_comparison example) proves w = 0 too — that is exactly\n\
         what the paper's logical product buys."
    );
}
