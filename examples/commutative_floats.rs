//! §5.1 of the paper: analyzing programs with *commutative* operators —
//! e.g. floating-point addition and multiplication, which commute but must
//! NOT be modeled as linear arithmetic (they are not associative under
//! rounding) — by reducing them to a single unary uninterpreted function
//! combined with linear arithmetic.
//!
//! ```sh
//! cargo run --release --example commutative_floats
//! ```

use cai_core::reduce::{EncodeMode, UnaryEncoder};
use cai_core::LogicalProduct;
use cai_interp::{parse_program, Analyzer};
use cai_linarith::AffineEq;
use cai_term::parse::Vocab;
use cai_uf::UfDomain;

fn main() {
    let vocab = Vocab::standard();
    // Fadd/Fmul model floating-point + and *: commutative, nothing more.
    let program = parse_program(
        &vocab,
        "
        s1 := Fadd(a, b);
        s2 := Fadd(b, a);        // fp-add commutes
        p1 := Fmul(s1, c);
        p2 := Fmul(c, s2);       // fp-mul commutes, congruent arguments
        while (*) {
            s1 := Fadd(s1, d);
            s2 := Fadd(d, s2);   // stays equal through the loop
        }
        assert(s1 = s2);
        assert(p1 = p2);
        assert(p1 = Fmul(c, Fadd(a, b)));
        assert(s1 = Fadd(a, c)); // false: must NOT be proved
        ",
    )
    .expect("program parses");

    // The §5.1 mapping M: Gi(t1, t2) ↦ F#(i + M t1 + M t2). The symmetric
    // sum makes commutativity hold definitionally in the image.
    let mut enc = UnaryEncoder::new(EncodeMode::Commutative);
    let encoded = program.map_terms(&mut |t| enc.encode_term(t));

    println!("source program:\n{program}");
    println!("encoded program (M applied):\n{encoded}");

    let domain = LogicalProduct::new(AffineEq::new(), UfDomain::new());
    let analysis = Analyzer::new(&domain).run(&encoded);

    for a in &analysis.assertions {
        println!(
            "assert({}) ... {}",
            a.atom,
            if a.verified { "VERIFIED" } else { "not proved" }
        );
    }
    println!(
        "\nThe commutative-function lattice needed no implementation of its\n\
         own: the §5 reduction plus the combination methodology reuse the\n\
         unary-UF and linear-arithmetic interpreters as black boxes."
    );
}
