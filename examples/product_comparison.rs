//! The paper's Figure 1 precision ladder, live: the same program analyzed
//! over the component domains, their direct product, reduced product, and
//! logical product.
//!
//! ```sh
//! cargo run --release --example product_comparison
//! ```

use cai_core::{AbstractDomain, LogicalProduct, ReducedProduct};
use cai_interp::{herbrand_view, parse_program, Analyzer, Program};
use cai_linarith::AffineEq;
use cai_term::parse::Vocab;
use cai_uf::UfDomain;

const FIG1: &str = "
    a1 := 0; a2 := 0;
    b1 := 1; b2 := F(1);
    c1 := 2; c2 := 2;
    d1 := 3; d2 := F(4);
    while (b1 < b2) {
        a1 := a1 + 1; a2 := a2 + 2;
        b1 := F(b1);  b2 := F(b2);
        c1 := F(2*c1 - c2); c2 := F(c2);
        d1 := F(1 + d1); d2 := F(d2 + 1);
    }
    assert(a2 = 2*a1);
    assert(b2 = F(b1));
    assert(c2 = c1);
    assert(d2 = F(d1 + 1));
";

fn verdicts<D: AbstractDomain>(d: &D, p: &Program, herbrand: bool) -> Vec<bool> {
    let analyzer = if herbrand {
        Analyzer::new(d).with_view(herbrand_view)
    } else {
        Analyzer::new(d)
    };
    analyzer
        .run(p)
        .assertions
        .iter()
        .map(|a| a.verified)
        .collect()
}

fn row(name: &str, verdicts: &[bool]) {
    let marks: Vec<&str> = verdicts
        .iter()
        .map(|v| if *v { "yes" } else { " - " })
        .collect();
    println!(
        "{name:<18} | {:^7} | {:^9} | {:^7} | {:^13} | {}",
        marks[0],
        marks[1],
        marks[2],
        marks[3],
        verdicts.iter().filter(|v| **v).count()
    );
}

fn main() {
    let vocab = Vocab::standard();
    let p = parse_program(&vocab, FIG1).expect("figure 1 parses");

    println!("Figure 1 program:\n{p}");
    println!(
        "{:<18} | a2=2a1  | b2=F(b1)  | c2=c1   | d2=F(d1+1)    | total",
        "analysis"
    );
    println!("{}", "-".repeat(78));

    let lin = verdicts(&AffineEq::new(), &p, false);
    row("linear equalities", &lin);

    let uf = verdicts(&UfDomain::new(), &p, true);
    row("uninterpreted fns", &uf);

    let direct: Vec<bool> = lin.iter().zip(&uf).map(|(a, b)| *a || *b).collect();
    row("direct product", &direct);

    let reduced = ReducedProduct::new(AffineEq::new(), UfDomain::new());
    row("reduced product", &verdicts(&reduced, &p, false));

    let logical = LogicalProduct::new(AffineEq::new(), UfDomain::new());
    row("logical product", &verdicts(&logical, &p, false));

    println!(
        "\nThe logical product is the paper's contribution: it verifies the\n\
         mixed assertion d2 = F(d1 + 1), which is not even *expressible* in\n\
         the reduced product lattice."
    );
}
