//! Nesting logical products: verifying a program that mixes linear
//! arithmetic, uninterpreted functions, and lists — three pairwise
//! disjoint, convex, stably infinite theories, combined entirely by the
//! paper's black-box methodology.
//!
//! ```sh
//! cargo run --release --example three_theories
//! ```

use cai_core::{LogicalProduct, Precision};
use cai_interp::{parse_program, Analyzer};
use cai_linarith::AffineEq;
use cai_lists::ListDomain;
use cai_term::parse::Vocab;
use cai_uf::UfDomain;

fn main() {
    let vocab = Vocab::standard();
    let program = parse_program(
        &vocab,
        "
        // Build a list whose head tracks a counter, hash it with an
        // uninterpreted function, and keep everything related.
        n := 0;
        l := cons(n + 1, nil);
        h := Hash(car(l));
        while (*) {
            n := n + 1;
            l := cons(n + 1, l);
            h := Hash(car(l));
        }
        assert(car(l) = n + 1);
        assert(h = Hash(n + 1));
        assert(cdr(cons(n, l)) = l);
        ",
    )
    .expect("program parses");

    // (AffineEq ⋈ UF) ⋈ Lists — products nest because a product is itself
    // an AbstractDomain over the union signature.
    let domain = LogicalProduct::new(
        LogicalProduct::new(AffineEq::new(), UfDomain::new()),
        ListDomain::new(),
    );
    assert_eq!(domain.precision(), Precision::Complete);

    let analysis = Analyzer::new(&domain).run(&program);

    println!("program:\n{program}");
    println!("exit invariant: {}", analysis.exit);
    println!(
        "loop iterations to fixpoint: {:?}",
        analysis.loop_iterations
    );
    for a in &analysis.assertions {
        println!(
            "assert({}) ... {}",
            a.atom,
            if a.verified { "VERIFIED" } else { "not proved" }
        );
    }
}
