//! Quickstart: analyze a small program over the logical product of the
//! affine-equalities domain and the uninterpreted-functions domain.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cai_core::{AbstractDomain, LogicalProduct, Precision};
use cai_interp::{parse_program, Analyzer};
use cai_linarith::AffineEq;
use cai_term::parse::Vocab;
use cai_uf::UfDomain;

fn main() {
    // 1. A vocabulary resolves function symbols in program text; uppercase
    //    identifiers are uninterpreted functions.
    let vocab = Vocab::standard();
    let program = parse_program(
        &vocab,
        "
        // Mixed arithmetic / uninterpreted-function loop whose invariant
        // y = F(x + 1) is a *mixed* fact: neither component lattice can
        // express it, but their logical product discovers and keeps it.
        x := 0;
        y := F(1);
        while (*) {
            y := F(x + 2);
            x := x + 1;
        }
        assert(y = F(x + 1));
        assert(y = F(x));        // false: must not be proved
        ",
    )
    .expect("program parses");

    // 2. Combine two independently implemented abstract interpreters.
    let domain = LogicalProduct::new(AffineEq::new(), UfDomain::new());
    assert_eq!(domain.precision(), Precision::Complete);

    // 3. Run the forward analysis.
    let analysis = Analyzer::new(&domain).run(&program);

    println!("program:\n{program}");
    println!("exit invariant: {}", analysis.exit);
    println!("loop fixpoint iterations: {:?}", analysis.loop_iterations);
    for a in &analysis.assertions {
        println!(
            "assert({}) ... {}",
            a.atom,
            if a.verified { "VERIFIED" } else { "not proved" }
        );
    }

    // 4. The domain API is usable directly, without the analyzer.
    let e = domain.from_conj(&vocab.parse_conj("p = F(q + 1) & q = r - 1").unwrap());
    let query = vocab.parse_atom("p = F(r)").unwrap();
    println!(
        "\ndirect query: {} ⇒ {} : {}",
        e,
        query,
        domain.implies_atom(&e, &query)
    );
}
