#!/usr/bin/env bash
# Offline CI gate for the workspace. Run from the repo root.
#
#   1. formatting            (cargo fmt --check)
#   2. lint, library code    (clippy, warnings + unwrap/panic-free libs)
#   3. lint, all targets     (clippy, warnings; tests/bins may unwrap)
#   4. release build
#   5. test suite
#
# Everything runs with --offline: the workspace has no external
# dependencies and must keep building in a network-less container.
set -euo pipefail
cd "$(dirname "$0")"

echo "== supervision boundary gate =="
# catch_unwind is reserved for the driver's supervisor module: one
# audited boundary, not scattered ad-hoc recovery. (Tests detect panics
# via thread::spawn().join().is_err() instead.)
strays=$(grep -rn "catch_unwind(" crates --include="*.rs" \
    | grep -v "^crates/driver/src/supervisor.rs:" || true)
if [ -n "$strays" ]; then
    echo "catch_unwind outside the supervisor boundary:"
    echo "$strays"
    exit 1
fi

echo "== fmt check =="
cargo fmt --all -- --check

echo "== clippy (libs: -D warnings -D clippy::unwrap_used) =="
cargo clippy --workspace --lib --offline -- -D warnings -D clippy::unwrap_used

echo "== clippy (all targets: -D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== build (release) =="
cargo build --release --offline

echo "== test =="
cargo test -q --workspace --offline

echo "== driver tests (release) =="
cargo test -q -p cai-driver --release --offline

echo "== driver_eval smoke (context-sensitivity + supervised chaos) =="
# --ctx-stats exits nonzero unless entry-keyed summaries are never less
# precise than the insensitive ones, strictly more precise on the
# reassigned-formal benchmark, and deterministic across thread counts.
# --chaos (fixed seed) exits nonzero unless the supervised driver
# absorbs injected panics with no abort — retries recover at the gentle
# rate, zero-retry quarantines pin to the sound top summary — and both
# phases are bit-identical across thread counts.
cargo run --release -p cai-bench --bin driver_eval --offline -- \
    --smoke --ctx-stats --chaos --chaos-seed 7

echo "== paper_eval --join-stats smoke =="
# Exits nonzero unless the split cache hits, saves ticks, and leaves the
# analysis results bit-identical.
cargo run --release -p cai-bench --bin paper_eval --offline -- --join-stats

echo "CI OK"
