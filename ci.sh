#!/usr/bin/env bash
# Offline CI gate for the workspace. Run from the repo root.
#
#   1. formatting            (cargo fmt --check)
#   2. lint, library code    (clippy, warnings + unwrap/panic-free libs)
#   3. lint, all targets     (clippy, warnings; tests/bins may unwrap)
#   4. release build
#   5. test suite
#
# Everything runs with --offline: the workspace has no external
# dependencies and must keep building in a network-less container.
set -euo pipefail
cd "$(dirname "$0")"

echo "== supervision boundary gate =="
# catch_unwind is reserved for the driver's supervisor module: one
# audited boundary, not scattered ad-hoc recovery. (Tests detect panics
# via thread::spawn().join().is_err() instead.)
strays=$(grep -rn "catch_unwind(" crates --include="*.rs" \
    | grep -v "^crates/driver/src/supervisor.rs:" || true)
if [ -n "$strays" ]; then
    echo "catch_unwind outside the supervisor boundary:"
    echo "$strays"
    exit 1
fi

echo "== observability confinement gate =="
# All logging and wall-clock reads go through cai-obs (spans, counters,
# clock::now). A stray eprintln! is invisible to the exporters; a stray
# Instant::now() risks wall-clock creeping into analysis decisions and
# breaking the bit-identical determinism contract (DESIGN.md section 10).
# crates/obs implements the door; crates/bench is the timing/report
# harness and may do both.
strays=$(grep -rn "eprintln!\|Instant::now" crates --include="*.rs" \
    | grep -v "^crates/obs/" | grep -v "^crates/bench/" || true)
if [ -n "$strays" ]; then
    echo "eprintln!/Instant::now outside crates/obs and crates/bench:"
    echo "$strays"
    exit 1
fi

echo "== fmt check =="
cargo fmt --all -- --check

echo "== clippy (libs: -D warnings -D clippy::unwrap_used) =="
cargo clippy --workspace --lib --offline -- -D warnings -D clippy::unwrap_used

echo "== clippy (all targets: -D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== build (release) =="
cargo build --release --offline

echo "== test =="
cargo test -q --workspace --offline

echo "== driver tests (release) =="
cargo test -q -p cai-driver --release --offline

echo "== driver_eval smoke (context-sensitivity + supervised chaos) =="
# --ctx-stats exits nonzero unless entry-keyed summaries are never less
# precise than the insensitive ones, strictly more precise on the
# reassigned-formal benchmark, and deterministic across thread counts.
# --chaos (fixed seed) exits nonzero unless the supervised driver
# absorbs injected panics with no abort — retries recover at the gentle
# rate, zero-retry quarantines pin to the sound top summary — and both
# phases are bit-identical across thread counts.
cargo run --release -p cai-bench --bin driver_eval --offline -- \
    --smoke --ctx-stats --chaos --chaos-seed 7

echo "== budget-policy smoke (adaptive slices + narrowing recovery) =="
# paper_eval --budget-policy exits nonzero unless the adaptive policy's
# narrowing pass strictly recovers precision (narrowed ⊑ widened) on the
# canonical widening-loss loop, including under a starved fuel pool.
# driver_eval --budget-policy exits nonzero unless adaptive slices are
# per-procedure no less precise than flat ones (strictly better on the
# starved procedure) and the chaos-wrapped adaptive run completes with
# no abort, bit-identically across thread counts. The obs report must
# cover the core, interp (incl. the narrowing counters), and driver
# layers.
cargo run --release -p cai-bench --bin paper_eval --offline -- --budget-policy
policy_log=$(mktemp /tmp/cai-policy-report.XXXXXX.log)
cargo run --release -p cai-bench --bin driver_eval --offline -- \
    --smoke --budget-policy --chaos-seed 7 --obs-report | tee "$policy_log"
for prefix in core/ interp/ interp/narrow/ driver/; do
    grep -q "^$prefix" "$policy_log" || {
        echo "budget-policy obs report is missing the $prefix layer"; exit 1; }
done
# The capped-merge drop counters must be visible (explicit zeroes on a
# clean run), so silent incident loss is ruled out by inspection.
for counter in core/budget/events-dropped core/budget/incidents-dropped; do
    grep -q "^$counter" "$policy_log" || {
        echo "obs report is missing the $counter counter"; exit 1; }
done
rm -f "$policy_log"

echo "== paper_eval --join-stats smoke =="
# Exits nonzero unless the split cache hits, saves ticks, and leaves the
# analysis results bit-identical — and, on the incremental-edit workload,
# unless the sub-structural memo scores partial hits and saves saturation
# rounds over the whole-conjunction memo while the cached driver runs stay
# bit-identical to the uncached baseline at 1/2/4 threads. The report must
# show a nonzero partial-hit rate and the identity verdicts.
join_log=$(mktemp /tmp/cai-join-stats.XXXXXX.log)
cargo run --release -p cai-bench --bin paper_eval --offline -- --join-stats | tee "$join_log"
grep -q "partial-hit rate=" "$join_log" || {
    echo "--join-stats report is missing the sub-structural partial-hit rate"; exit 1; }
grep -q "partial-hit rate=0.0%" "$join_log" && {
    echo "--join-stats: sub-structural partial-hit rate is zero"; exit 1; }
idents=$(grep -c "identical to uncached baseline" "$join_log" || true)
if [ "$idents" -ne 3 ]; then
    echo "--join-stats: expected 3 cached-vs-uncached identity verdicts (1/2/4 threads), got $idents"
    exit 1
fi
rm -f "$join_log"

echo "== precision-provenance smoke (--blame / --blame-out) =="
# paper_eval --blame exits nonzero unless the canonical widening loss is
# attributed to the loop's widening site. driver_eval --blame-out exits
# nonzero unless >=4 loss kinds are covered, the export is bit-identical
# at 1/2/4 threads, and results are unchanged with the layer off; the
# exported JSON must parse, cover >=4 kinds, and its differential leg
# must name the calibrated widening site (analyzer/while in `big`) first.
cargo run --release -p cai-bench --bin paper_eval --offline -- --blame
blame_json=$(mktemp /tmp/cai-blame.XXXXXX.json)
cargo run --release -p cai-bench --bin driver_eval --offline -- \
    --smoke --chaos-seed 7 --blame-out "$blame_json"
python3 - "$blame_json" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
kinds = report["kinds"]
assert len(kinds) >= 4, f"expected >=4 loss kinds, got {kinds}"
for leg, rows in report["legs"].items():
    for row in rows:
        for field in ("scope", "site", "domain", "kind", "count"):
            assert field in row, f"{leg} row missing {field}: {row}"
regressions = report["differential"]["regressions"]
assert regressions, "the flat leg must regress at least one assertion"
first = regressions[0]
assert first["proc"] == "big", first
cause = first["causes"][0]
assert cause["site"] == "analyzer/while", cause
assert cause["delta"] >= 1, cause
print(f"blame OK: {len(kinds)} kinds, top blame {cause['kind']} at {cause['scope']}")
PY
rm -f "$blame_json"

echo "== observability smoke (--trace-out / --obs-report) =="
# The exported Chrome trace must be parseable, non-empty JSON, and the
# counter report must cover every instrumented layer.
obs_trace=$(mktemp /tmp/cai-trace.XXXXXX.json)
obs_log=$(mktemp /tmp/cai-obs-report.XXXXXX.log)
cargo run --release -p cai-bench --bin driver_eval --offline -- \
    --smoke --trace-out "$obs_trace" --obs-report | tee "$obs_log"
python3 - "$obs_trace" <<'PY'
import json, sys
events = json.load(open(sys.argv[1]))
assert isinstance(events, list) and events, "trace must be a non-empty array"
for e in events:
    assert e["ph"] in ("X", "i") and "ts" in e and "name" in e, e
print(f"trace OK: {len(events)} events")
PY
for prefix in core/ uf/ interp/ driver/; do
    grep -q "^$prefix" "$obs_log" || {
        echo "obs report is missing the $prefix layer"; exit 1; }
done
rm -f "$obs_trace" "$obs_log"

echo "CI OK"
