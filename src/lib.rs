//! Facade crate for the `cai` workspace: combining abstract interpreters
//! via logical products (Gulwani & Tiwari, PLDI 2006).
//!
//! Re-exports the component crates under short module names. See the
//! README (doctested below) for a guided tour.
#![doc = include_str!("../README.md")]

pub use cai_core as core;
pub use cai_driver as driver;
pub use cai_interp as interp;
pub use cai_linarith as linarith;
pub use cai_lists as lists;
pub use cai_num as num;
pub use cai_numeric as numeric;
pub use cai_obs as obs;
pub use cai_term as term;
pub use cai_uf as uf;
