//! The precision-provenance determinism contract (see DESIGN.md §11):
//! the blame layer is observation-only — results are bit-identical with
//! it on and off — and its drained table is a pure function of the
//! analysis, so the exported JSON is identical at every thread count,
//! including under injected degradation faults.

use cai_core::{Budget, ChaosConfig, ChaosDomain, LogicalProduct};
use cai_driver::{Driver, ModuleAnalysis};
use cai_interp::{parse_module, Module};
use cai_linarith::AffineEq;
use cai_obs::provenance;
use cai_term::parse::Vocab;
use cai_uf::UfDomain;
use std::sync::Mutex;

/// Serializes the tests that toggle the global blame-layer state; the
/// cargo test harness runs tests concurrently.
static BLAME_LOCK: Mutex<()> = Mutex::new(());

type Product = LogicalProduct<AffineEq, UfDomain>;
type DegradingProduct = LogicalProduct<ChaosDomain<AffineEq>, UfDomain>;

fn product_driver() -> Driver<Product, impl Fn(&Budget) -> Product + Sync> {
    Driver::new(|_: &Budget| LogicalProduct::new(AffineEq::new(), UfDomain::new()))
}

/// A driver whose *base* domain injects sound degradation faults (forced
/// ⊤ joins, defective Alternate operators, budget exhaustion) plus
/// panics, so every run records loss events across several kinds and
/// exercises the supervisor.
fn degrading_driver(
    seed: u64,
    panic_rate: u32,
) -> Driver<DegradingProduct, impl Fn(&Budget) -> DegradingProduct + Sync> {
    Driver::new(move |b: &Budget| {
        LogicalProduct::new(
            ChaosDomain::new(AffineEq::new(), seed)
                .with_config(ChaosConfig {
                    top_join_permille: 100,
                    break_alternate_permille: 300,
                    exhaust_budget_permille: 10,
                    panic_permille: panic_rate,
                    ..ChaosConfig::quiet()
                })
                .with_budget(b.clone()),
            UfDomain::new(),
        )
    })
}

fn test_module(n: usize) -> Module {
    let mut src = String::new();
    for i in 0..n {
        let k = i % 5;
        src.push_str(&format!(
            "proc p{i}(a) {{
                 x := a + {k};
                 y := F(x);
                 while (*) {{ x := x + 1; y := F(x); }}
                 assert(y = F(x));
                 ret := x;
             }}\n"
        ));
    }
    parse_module(&Vocab::standard(), &src).expect("generated module parses")
}

/// Every observable fact of a run, as one comparable string: summaries
/// (including their rendering), verdicts, flags, supervision counters,
/// and the incident log.
fn fingerprint(a: &ModuleAnalysis) -> String {
    let mut s = String::new();
    for r in a {
        let verdicts: Vec<bool> = r.assertions.iter().map(|o| o.verified).collect();
        s.push_str(&format!(
            "{} | {} | {verdicts:?} | diverged={} quarantined={}\n",
            r.name, r.summary, r.diverged, r.quarantined
        ));
    }
    s.push_str(&format!("sup={:?}\n", a.supervision));
    for i in &a.degradation.incidents {
        s.push_str(&format!(
            "{} `{}` attempt {}\n",
            i.kind, i.subject, i.attempt
        ));
    }
    s
}

/// The export contract: with degradation faults injected, the drained
/// blame table's JSON is bit-identical at 1, 2 and 4 threads — scopes
/// are thread-local, rounds are logical, and aggregation is commutative,
/// so the schedule leaves no trace.
#[test]
fn blame_json_is_identical_across_thread_counts_under_chaos() {
    let _guard = BLAME_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let m = test_module(8);
    let (seed, panic_rate) = (7, 200);

    provenance::set_enabled(true);
    let _ = provenance::drain();
    let run = |threads: usize| {
        let a = degrading_driver(seed, panic_rate)
            .max_retries(0)
            .threads(threads)
            .with_budget(Budget::fuel(200_000))
            .analyze(&m);
        (fingerprint(&a), provenance::drain())
    };

    let (base_fp, base_tab) = run(1);
    provenance::set_enabled(false);
    provenance::set_enabled(true);
    assert!(
        !base_tab.is_empty(),
        "the fault rates must actually record loss events"
    );
    assert!(
        base_tab.kinds().len() >= 2,
        "expected several loss kinds, got {:?}",
        base_tab.kinds()
    );
    for threads in [2usize, 4] {
        let (fp, tab) = run(threads);
        assert_eq!(base_fp, fp, "chaos run at {threads} thread(s) diverged");
        assert_eq!(
            base_tab.to_json(),
            tab.to_json(),
            "blame JSON at {threads} thread(s) differs from the 1-thread export"
        );
    }
    provenance::set_enabled(false);
}

/// The transparency contract: the blame layer (and the tracer) observe,
/// never steer. Results are bit-identical with both layers off and both
/// on, at every thread count — and the disabled layer records nothing.
#[test]
fn provenance_off_and_on_are_bit_identical() {
    let _guard = BLAME_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let m = test_module(8);

    // A starved fuel pool makes the run actually *lose* facts (budget
    // degradations), so the on-leg has events to record — and the
    // degradations themselves must be identical with the layer off.
    let run = |threads: usize| {
        fingerprint(
            &product_driver()
                .threads(threads)
                .with_budget(Budget::fuel(24))
                .analyze(&m),
        )
    };
    provenance::set_enabled(false);
    cai_obs::trace::set_enabled(false);
    let baseline = run(1);
    assert!(
        provenance::drain().is_empty(),
        "a disabled layer must record nothing"
    );

    provenance::set_enabled(true);
    cai_obs::trace::set_enabled(true);
    for threads in [1usize, 2, 4] {
        let observed = run(threads);
        assert_eq!(
            baseline, observed,
            "blame-on run at {threads} thread(s) diverged from the blame-off baseline"
        );
    }
    let table = provenance::drain();
    let spans = cai_obs::trace::drain();
    provenance::set_enabled(false);
    cai_obs::trace::set_enabled(false);
    assert!(
        !table.is_empty(),
        "the observed runs must actually have recorded loss events (the pool starves here)"
    );
    assert!(!spans.is_empty(), "the tracer must have recorded spans");
    // Losses carry the procedure/loop scope, not a thread identity.
    assert!(
        table.entries.iter().any(|e| e.scope.contains("/loop#")),
        "loss events must be attributed to a proc/loop scope, got {:?}",
        table.entries.iter().map(|e| &e.scope).collect::<Vec<_>>()
    );
}
