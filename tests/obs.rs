//! The observability determinism contract (see DESIGN.md): turning the
//! tracer on, or varying the driver's thread count, must never change an
//! analysis result — observation is read-only. Plus the arithmetic the
//! contract's tooling relies on: snapshot subtraction and the tracer's
//! drop-oldest ring wraparound.

use cai_core::{Budget, ChaosConfig, ChaosDomain, LogicalProduct};
use cai_driver::{Driver, ModuleAnalysis};
use cai_interp::{parse_module, Module};
use cai_linarith::AffineEq;
use cai_obs::trace;
use cai_term::parse::Vocab;
use cai_uf::UfDomain;
use std::sync::Mutex;

/// Serializes the tests that toggle global tracer state (enabled flag,
/// ring capacity); the cargo test harness runs tests concurrently.
static TRACER_LOCK: Mutex<()> = Mutex::new(());

type Product = LogicalProduct<AffineEq, UfDomain>;

fn product_driver() -> Driver<Product, impl Fn(&Budget) -> Product + Sync> {
    Driver::new(|_: &Budget| LogicalProduct::new(AffineEq::new(), UfDomain::new()))
}

fn chaos_driver(
    seed: u64,
    rate: u32,
) -> Driver<ChaosDomain<Product>, impl Fn(&Budget) -> ChaosDomain<Product> + Sync> {
    Driver::new(move |b: &Budget| {
        ChaosDomain::new(LogicalProduct::new(AffineEq::new(), UfDomain::new()), seed)
            .with_config(ChaosConfig {
                panic_permille: rate,
                ..ChaosConfig::quiet()
            })
            .with_budget(b.clone())
    })
}

fn test_module(n: usize) -> Module {
    let mut src = String::new();
    for i in 0..n {
        let k = i % 5;
        src.push_str(&format!(
            "proc p{i}(a) {{
                 x := a + {k};
                 y := F(x);
                 while (*) {{ x := x + 1; y := F(x); }}
                 assert(y = F(x));
                 ret := x;
             }}\n"
        ));
    }
    parse_module(&Vocab::standard(), &src).expect("generated module parses")
}

/// Every observable fact of a run, as one comparable string: summaries
/// (including their rendering), verdicts, flags, supervision counters,
/// and the incident log.
fn fingerprint(a: &ModuleAnalysis) -> String {
    let mut s = String::new();
    for r in a {
        let verdicts: Vec<bool> = r.assertions.iter().map(|o| o.verified).collect();
        s.push_str(&format!(
            "{} | {} | {verdicts:?} | diverged={} quarantined={}\n",
            r.name, r.summary, r.diverged, r.quarantined
        ));
    }
    s.push_str(&format!("sup={:?}\n", a.supervision));
    for i in &a.degradation.incidents {
        s.push_str(&format!(
            "{} `{}` attempt {}\n",
            i.kind, i.subject, i.attempt
        ));
    }
    s
}

/// The core contract: the tracer is observation-only. Analysis results
/// are bit-identical with it off and on, at every thread count.
#[test]
fn tracer_on_off_is_bit_identical_across_thread_counts() {
    let _guard = TRACER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let m = test_module(8);

    trace::set_enabled(false);
    let baseline = fingerprint(&product_driver().threads(1).analyze(&m));

    trace::set_enabled(true);
    for threads in [1, 2, 4] {
        let traced = fingerprint(&product_driver().threads(threads).analyze(&m));
        assert_eq!(
            baseline, traced,
            "tracer-on run at {threads} thread(s) diverged from the untraced baseline"
        );
    }
    let recorded = trace::drain();
    trace::set_enabled(false);
    assert!(
        !recorded.is_empty(),
        "the traced runs must actually have recorded spans"
    );
}

/// Same contract under injected faults: a chaos run (caught panics,
/// retries, quarantines) is bit-identical with the tracer off and on.
#[test]
fn tracer_is_inert_under_chaos() {
    let _guard = TRACER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let m = test_module(8);
    let (seed, rate) = (7, 500);

    trace::set_enabled(false);
    let baseline = fingerprint(&chaos_driver(seed, rate).threads(1).analyze(&m));
    assert!(
        baseline.contains("Panic") || baseline.contains("quarantined=true"),
        "the chaos rate must actually inject faults for this to test anything"
    );

    trace::set_enabled(true);
    for threads in [1, 2] {
        let traced = fingerprint(&chaos_driver(seed, rate).threads(threads).analyze(&m));
        assert_eq!(
            baseline, traced,
            "traced chaos run at {threads} thread(s) diverged from the untraced baseline"
        );
    }
    trace::drain();
    trace::set_enabled(false);
}

/// Snapshot subtraction is the metering primitive: counters and
/// histogram totals subtract (saturating), gauges keep the newer value.
#[test]
fn snapshot_subtraction_arithmetic() {
    use cai_obs::{Metrics, Value};
    let m = Metrics::new();
    m.counter("joins").add(10);
    m.gauge("depth").set(3);
    m.histogram("iters").observe(4);
    let before = m.snapshot();

    m.counter("joins").add(5);
    m.counter("fresh").add(2);
    m.gauge("depth").set(9);
    m.histogram("iters").observe(6);
    let after = m.snapshot();

    let delta = &after - &before;
    assert_eq!(delta.counter("joins"), 5);
    assert_eq!(delta.counter("fresh"), 2, "new names pass through whole");
    assert_eq!(delta.get("depth"), Some(Value::Gauge(9)));
    match delta.get("iters") {
        Some(Value::Histogram(h)) => {
            assert_eq!((h.count, h.sum), (1, 6));
        }
        other => panic!("expected a histogram delta, got {other:?}"),
    }
    // Subtraction saturates rather than wrapping: a stale (larger)
    // baseline yields zero, not u64::MAX.
    let zero = &before - &after;
    assert_eq!(zero.counter("joins"), 0);
}

/// The per-thread ring drops the *oldest* events on overflow: after
/// recording more instants than the capacity, the drained trace holds
/// exactly the newest ones and reports the rest as dropped.
#[test]
fn ring_wraparound_keeps_newest_events() {
    let _guard = TRACER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    trace::drain();
    trace::set_ring_capacity(8);
    trace::set_enabled(true);
    // A fresh thread gets a fresh ring at the reduced capacity.
    std::thread::spawn(|| {
        for i in 0..50 {
            cai_obs::instant!("event-{i}");
        }
    })
    .join()
    .expect("recorder thread");
    let t = trace::drain();
    trace::set_enabled(false);
    trace::set_ring_capacity(trace::DEFAULT_RING_CAPACITY);

    assert_eq!(t.events.len(), 8, "the ring holds exactly its capacity");
    assert_eq!(t.dropped, 42, "the overwritten events are accounted for");
    let names: Vec<&str> = t.events.iter().map(|e| e.name.as_str()).collect();
    let newest: Vec<String> = (42..50).map(|i| format!("event-{i}")).collect();
    assert_eq!(names, newest, "wraparound keeps the newest events");
}
