//! Figure 8 of the paper: combining *non-disjoint* theories (parity and
//! sign share `+`, `-`, `0`, `1`) is sound but incomplete.
//!
//! The strongest postcondition of `even(x) ∧ positive(x)` across
//! `x := x - 1` is `odd(x) ∧ positive(x)` (over the integers), but the
//! black-box combination can only produce `odd(x)`: the sign component
//! alone cannot bound `x - 1` away from zero, and no exchange of variable
//! equalities helps. This is the Cousot & Cousot counterexample the paper
//! adapts.

use cai_core::{AbstractDomain, LogicalProduct, Precision};
use cai_interp::{parse_program, Analyzer};
use cai_numeric::{ParityDomain, SignDomain};
use cai_term::parse::Vocab;
use cai_term::{Var, VarSet};

fn product() -> LogicalProduct<ParityDomain, SignDomain> {
    LogicalProduct::new(ParityDomain::new(), SignDomain::new())
}

#[test]
fn combination_is_flagged_heuristic() {
    assert_eq!(product().precision(), Precision::HeuristicNonDisjoint);
}

#[test]
fn figure8_quantification_trace() {
    // Q_{L1⋈L2}(even(x0) ∧ positive(x0) ∧ x = x0 − 1, {x0}).
    let vocab = Vocab::standard();
    let d = product();
    let e = vocab
        .parse_conj("even(x0) & positive(x0) & x = x0 - 1")
        .unwrap();
    let elim: VarSet = [Var::named("x0")].into_iter().collect();
    let q = d.exists(&e, &elim);
    // The parity side contributes odd(x) ...
    assert!(
        d.implies_atom(&q, &vocab.parse_atom("odd(x)").unwrap()),
        "Q = {q}"
    );
    // ... but the most precise answer odd(x) ∧ positive(x) is NOT reached:
    // the sign part is lost, exactly as the paper's Figure 8 shows.
    assert!(
        !d.implies_atom(&q, &vocab.parse_atom("positive(x)").unwrap()),
        "Q = {q} unexpectedly proves positive(x)"
    );
}

#[test]
fn figure8_as_a_program() {
    let vocab = Vocab::standard();
    let p = parse_program(
        &vocab,
        "x := *;
         assume(even(x));
         assume(positive(x));
         x := x - 1;
         assert(odd(x));
         assert(positive(x));",
    )
    .unwrap();
    let d = product();
    let analysis = Analyzer::new(&d).run(&p);
    let got: Vec<bool> = analysis.assertions.iter().map(|a| a.verified).collect();
    // odd(x) verified; positive(x) lost to the incompleteness.
    assert_eq!(got, [true, false]);
}

#[test]
fn soundness_is_not_affected() {
    // Incomplete but sound: nothing false is ever proved.
    let vocab = Vocab::standard();
    let d = product();
    let e = vocab
        .parse_conj("even(x0) & positive(x0) & x = x0 - 1")
        .unwrap();
    for bogus in ["even(x)", "negative(x)", "negative(x0)", "odd(x0)"] {
        assert!(
            !d.implies_atom(&e, &vocab.parse_atom(bogus).unwrap()),
            "proved bogus fact {bogus}"
        );
    }
}

#[test]
fn meets_still_cooperate_on_shared_facts() {
    // The shared linear fact x = x0 - 1 is seen by both sides, so both
    // refine their per-variable maps from it.
    let vocab = Vocab::standard();
    let d = product();
    let e = vocab
        .parse_conj("even(x0) & positive(x0) & x = x0 + 1")
        .unwrap();
    // x = x0 + 1 with x0 positive: x positive; with x0 even: x odd.
    assert!(d.implies_atom(&e, &vocab.parse_atom("odd(x)").unwrap()));
    assert!(d.implies_atom(&e, &vocab.parse_atom("positive(x)").unwrap()));
}
