//! Theorem 6 of the paper: the fixpoint-height bound.
//!
//! `H_{L1⋈L2}(E) ≤ H_{L1}(E1) + H_{L2}(E2) + |AlienTerms(E)|`, so the
//! number of times a loop body is re-analyzed over the logical product is
//! *linear* in the component counts. We measure actual loop-iteration
//! counts of the analyzer over the components and over the product, on a
//! family of programs with a growing number of variables.

use cai_core::LogicalProduct;
use cai_interp::{herbrand_view, parse_program, Analyzer, Program};
use cai_linarith::AffineEq;
use cai_term::parse::Vocab;
use cai_term::{alien_terms, Sig, TheoryTag};
use cai_uf::UfDomain;
use std::fmt::Write as _;

/// A loop program with `k` linear counters and `k` UF-updated variables.
fn family(k: usize) -> String {
    let mut src = String::new();
    for i in 0..k {
        let _ = writeln!(src, "a{i} := {i}; u{i} := F(a{i} + {i});");
    }
    src.push_str("while (*) {\n");
    for i in 0..k {
        let _ = writeln!(src, "  a{i} := a{i} + {}; u{i} := F(u{i} + 1);", i + 1);
    }
    src.push_str("}\n");
    // Anchor assertion so there is something to check.
    src.push_str("assert(a0 = a0);\n");
    src
}

fn iterations<D: cai_core::AbstractDomain>(d: &D, p: &Program, herbrand: bool) -> usize {
    let analyzer = if herbrand {
        Analyzer::new(d).with_view(herbrand_view)
    } else {
        Analyzer::new(d)
    };
    let a = analyzer.run(p);
    assert!(!a.diverged, "diverged");
    a.loop_iterations.iter().sum()
}

#[test]
fn combined_fixpoint_is_linearly_bounded() {
    let vocab = Vocab::standard();
    for k in 1..=3 {
        let src = family(k);
        let p = parse_program(&vocab, &src).unwrap();
        let lin = iterations(&AffineEq::new(), &p, false);
        let uf = iterations(&UfDomain::new(), &p, true);
        let product = LogicalProduct::new(AffineEq::new(), UfDomain::new());
        let analyzer = Analyzer::new(&product);
        let analysis = analyzer.run(&p);
        assert!(!analysis.diverged);
        let combined: usize = analysis.loop_iterations.iter().sum();
        // The alien-term count of the final invariant bounds the extra
        // slack Theorem 6 allows.
        let lin_sig = Sig::single(TheoryTag::LINARITH);
        let uf_sig = Sig::single(TheoryTag::UF);
        let aliens = alien_terms(&analysis.exit, &lin_sig, &uf_sig).len();
        assert!(
            combined <= lin + uf + aliens + 1,
            "k={k}: combined={combined} lin={lin} uf={uf} aliens={aliens}"
        );
    }
}

#[test]
fn iteration_counts_are_small_and_stable() {
    // The fixpoint on this family stabilizes quickly for every domain —
    // a regression guard for the join/le machinery.
    let vocab = Vocab::standard();
    let p = parse_program(&vocab, &family(2)).unwrap();
    assert!(iterations(&AffineEq::new(), &p, false) <= 4);
    assert!(iterations(&UfDomain::new(), &p, true) <= 4);
    let product = LogicalProduct::new(AffineEq::new(), UfDomain::new());
    assert!(iterations(&product, &p, false) <= 6);
}

#[test]
fn nested_loops_converge() {
    let vocab = Vocab::standard();
    let p = parse_program(
        &vocab,
        "x := 0; y := F(x);
         while (*) {
            x := x + 1;
            while (*) { y := F(y); }
         }
         assert(x = x);",
    )
    .unwrap();
    let product = LogicalProduct::new(AffineEq::new(), UfDomain::new());
    let analysis = Analyzer::new(&product).run(&p);
    assert!(!analysis.diverged);
    assert!(analysis.loop_iterations.len() >= 2);
}
