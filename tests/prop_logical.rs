//! Property-based soundness tests for the logical-product operators on
//! randomly generated mixed conjunctions over linear arithmetic and
//! uninterpreted functions.
//!
//! Soundness of the Figure 6 join (Theorem 2): every atom of
//! `J(a, b)` is implied by both `a` and `b`. Soundness of the Figure 7
//! quantification (Theorem 4): every atom of `Q(e, V)` is implied by `e`
//! and mentions no variable of `V`.
//!
//! Random inputs come from the in-tree deterministic [`SplitMix64`]
//! stream (the workspace builds offline, with no external test crates);
//! each test runs a fixed set of seeded cases.

use cai_core::{AbstractDomain, LogicalProduct, ReducedProduct};
use cai_linarith::AffineEq;
use cai_num::SplitMix64;
use cai_term::parse::Vocab;
use cai_term::{Atom, Conj, FnSym, Term, Var, VarSet};
use cai_uf::UfDomain;

const CASES: usize = 48;

/// A random mixed term over `w0..w3` with the given depth budget: leaves
/// are variables (2/3) or small constants; interior nodes draw uniformly
/// from add, sub, `F/1`, and `G/2`.
fn rand_term(g: &mut SplitMix64, vocab: &Vocab, depth: usize) -> Term {
    if depth == 0 || g.ratio(1, 4) {
        return if g.ratio(2, 3) {
            Term::var(Var::named(&format!("w{}", g.below(4))))
        } else {
            Term::int(g.range_i64(-3, 4))
        };
    }
    match g.below(4) {
        0 => Term::add(
            &rand_term(g, vocab, depth - 1),
            &rand_term(g, vocab, depth - 1),
        ),
        1 => Term::sub(
            &rand_term(g, vocab, depth - 1),
            &rand_term(g, vocab, depth - 1),
        ),
        2 => {
            let f = vocab.function("F", 1).expect("arity fixed");
            Term::app(f, vec![rand_term(g, vocab, depth - 1)])
        }
        _ => {
            let f = vocab.function("G", 2).expect("arity fixed");
            Term::app(
                f,
                vec![
                    rand_term(g, vocab, depth - 1),
                    rand_term(g, vocab, depth - 1),
                ],
            )
        }
    }
}

fn rand_conj(g: &mut SplitMix64, vocab: &Vocab) -> Conj {
    (0..1 + g.below(3))
        .map(|_| Atom::eq(rand_term(g, vocab, 3), rand_term(g, vocab, 3)))
        .collect()
}

fn logical() -> LogicalProduct<AffineEq, UfDomain> {
    LogicalProduct::new(AffineEq::new(), UfDomain::new())
}

// Force interning of the shared symbols up front so arities agree.
fn shared_vocab() -> Vocab {
    let v = Vocab::standard();
    let _ = FnSym::uf("F", 1);
    let _ = FnSym::uf("G", 2);
    v
}

/// Theorem 2 (join soundness): both inputs imply every output atom.
#[test]
fn join_is_upper_bound() {
    let mut g = SplitMix64::new(0xE001);
    let vocab = shared_vocab();
    for _ in 0..CASES {
        let d = logical();
        let el = rand_conj(&mut g, &vocab);
        let er = rand_conj(&mut g, &vocab);
        let j = d.join(&el, &er);
        for atom in &j {
            assert!(d.implies_atom(&el, atom), "left {el} !=> {atom}");
            assert!(d.implies_atom(&er, atom), "right {er} !=> {atom}");
        }
    }
}

/// Theorem 4 (quantification soundness): the input implies the output,
/// and the eliminated variables are gone.
#[test]
fn exists_is_sound() {
    let mut g = SplitMix64::new(0xE002);
    let vocab = shared_vocab();
    for _ in 0..CASES {
        let d = logical();
        let e = rand_conj(&mut g, &vocab);
        let v = Var::named(&format!("w{}", g.below(4)));
        let elim: VarSet = [v].into_iter().collect();
        let q = d.exists(&e, &elim);
        assert!(!q.vars().contains(&v), "Q = {q} still mentions {v}");
        if !d.is_bottom(&e) {
            for atom in &q {
                assert!(d.implies_atom(&e, atom), "{e} !=> {atom}");
            }
        }
    }
}

/// The join is an upper bound in the lattice order (`le`).
#[test]
fn join_dominates_inputs() {
    let mut g = SplitMix64::new(0xE003);
    let vocab = shared_vocab();
    for _ in 0..CASES {
        let d = logical();
        let el = rand_conj(&mut g, &vocab);
        let er = rand_conj(&mut g, &vocab);
        let j = d.join(&el, &er);
        assert!(d.le(&el, &j));
        assert!(d.le(&er, &j));
    }
}

/// The logical product is at least as precise as the reduced product:
/// every (pure or mixed) fact the reduced join proves, the logical
/// join proves too.
#[test]
fn logical_refines_reduced() {
    let mut g = SplitMix64::new(0xE004);
    let vocab = shared_vocab();
    for _ in 0..CASES {
        let dl = logical();
        let dr = ReducedProduct::new(AffineEq::new(), UfDomain::new());
        let cl = rand_conj(&mut g, &vocab);
        let cr = rand_conj(&mut g, &vocab);
        let jl = dl.join(&cl, &cr);
        let jr = dr.join(&dr.from_conj(&cl), &dr.from_conj(&cr));
        for atom in &dr.to_conj(&jr) {
            assert!(
                dl.implies_atom(&jl, atom),
                "logical join {jl} misses reduced fact {atom}"
            );
        }
    }
}

/// Meet (conjunction) is the greatest lower bound's upper half:
/// `e ∧ atom` implies both `e` and `atom`.
#[test]
fn meet_is_lower_bound() {
    let mut g = SplitMix64::new(0xE005);
    let vocab = shared_vocab();
    for _ in 0..CASES {
        let d = logical();
        let e = rand_conj(&mut g, &vocab);
        let atom = Atom::eq(rand_term(&mut g, &vocab, 3), rand_term(&mut g, &vocab, 3));
        let m = d.meet_atom(&e, &atom);
        assert!(d.le(&m, &e));
        assert!(d.implies_atom(&m, &atom));
    }
}

/// Implication is reflexive on every generated element.
#[test]
fn le_is_reflexive() {
    let mut g = SplitMix64::new(0xE006);
    let vocab = shared_vocab();
    for _ in 0..CASES {
        let d = logical();
        let e = rand_conj(&mut g, &vocab);
        assert!(d.le(&e, &e));
    }
}

/// A completeness witness for Theorem 3: facts common to both inputs
/// *by construction* (a shared base conjunction, whose alien terms
/// therefore occur in both elements) must survive the join.
#[test]
fn join_retains_common_base() {
    let mut g = SplitMix64::new(0xE007);
    let vocab = shared_vocab();
    for _ in 0..CASES {
        let d = logical();
        let base = rand_conj(&mut g, &vocab);
        let el = base.and(&rand_conj(&mut g, &vocab));
        let er = base.and(&rand_conj(&mut g, &vocab));
        if d.is_bottom(&el) || d.is_bottom(&er) {
            continue;
        }
        let j = d.join(&el, &er);
        for atom in &base {
            assert!(d.implies_atom(&j, atom), "join {j} lost common fact {atom}");
        }
    }
}

/// Monotonicity of the join in the lattice order: joining with a
/// weaker element yields a weaker (or equal) result.
#[test]
fn join_monotone_in_top() {
    let mut g = SplitMix64::new(0xE008);
    let vocab = shared_vocab();
    for _ in 0..CASES {
        let d = logical();
        let el = rand_conj(&mut g, &vocab);
        let er = rand_conj(&mut g, &vocab);
        let j = d.join(&el, &er);
        let top = d.join(&el, &d.top());
        // top is an upper bound of any join with el.
        assert!(d.le(&j, &top) || d.equal_elems(&top, &d.top()));
    }
}
