//! Property-based soundness tests for the logical-product operators on
//! randomly generated mixed conjunctions over linear arithmetic and
//! uninterpreted functions.
//!
//! Soundness of the Figure 6 join (Theorem 2): every atom of
//! `J(a, b)` is implied by both `a` and `b`. Soundness of the Figure 7
//! quantification (Theorem 4): every atom of `Q(e, V)` is implied by `e`
//! and mentions no variable of `V`.

use cai_core::{AbstractDomain, LogicalProduct, ReducedProduct};
use cai_linarith::AffineEq;
use cai_term::parse::Vocab;
use cai_term::{Atom, Conj, FnSym, Term, Var, VarSet};
use cai_uf::UfDomain;
use proptest::prelude::*;

/// Random mixed terms over a small variable pool.
#[derive(Clone, Debug)]
enum RTerm {
    Var(u8),
    Const(i8),
    Add(Box<RTerm>, Box<RTerm>),
    Sub(Box<RTerm>, Box<RTerm>),
    F(Box<RTerm>),
    G(Box<RTerm>, Box<RTerm>),
}

impl RTerm {
    fn to_term(&self, vocab: &Vocab) -> Term {
        match self {
            RTerm::Var(i) => Term::var(Var::named(&format!("w{}", i % 4))),
            RTerm::Const(c) => Term::int(*c as i64),
            RTerm::Add(a, b) => Term::add(&a.to_term(vocab), &b.to_term(vocab)),
            RTerm::Sub(a, b) => Term::sub(&a.to_term(vocab), &b.to_term(vocab)),
            RTerm::F(a) => {
                let f = vocab.function("F", 1).unwrap();
                Term::app(f, vec![a.to_term(vocab)])
            }
            RTerm::G(a, b) => {
                let g = vocab.function("G", 2).unwrap();
                Term::app(g, vec![a.to_term(vocab), b.to_term(vocab)])
            }
        }
    }
}

fn rterm() -> impl Strategy<Value = RTerm> {
    let leaf = prop_oneof![
        (0u8..4).prop_map(RTerm::Var),
        (-3i8..4).prop_map(RTerm::Const),
    ];
    leaf.prop_recursive(3, 10, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| RTerm::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| RTerm::Sub(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| RTerm::F(Box::new(a))),
            (inner.clone(), inner)
                .prop_map(|(a, b)| RTerm::G(Box::new(a), Box::new(b))),
        ]
    })
}

fn rconj() -> impl Strategy<Value = Vec<(RTerm, RTerm)>> {
    proptest::collection::vec((rterm(), rterm()), 1..4)
}

fn build(vocab: &Vocab, eqs: &[(RTerm, RTerm)]) -> Conj {
    eqs.iter()
        .map(|(s, t)| Atom::eq(s.to_term(vocab), t.to_term(vocab)))
        .collect()
}

fn logical() -> LogicalProduct<AffineEq, UfDomain> {
    LogicalProduct::new(AffineEq::new(), UfDomain::new())
}

// Force interning of the shared symbols up front so arities agree.
fn shared_vocab() -> Vocab {
    let v = Vocab::standard();
    let _ = FnSym::uf("F", 1);
    let _ = FnSym::uf("G", 2);
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 2 (join soundness): both inputs imply every output atom.
    #[test]
    fn join_is_upper_bound(l in rconj(), r in rconj()) {
        let vocab = shared_vocab();
        let d = logical();
        let (el, er) = (build(&vocab, &l), build(&vocab, &r));
        let j = d.join(&el, &er);
        for atom in &j {
            prop_assert!(d.implies_atom(&el, atom), "left {el} !=> {atom}");
            prop_assert!(d.implies_atom(&er, atom), "right {er} !=> {atom}");
        }
    }

    /// Theorem 4 (quantification soundness): the input implies the output,
    /// and the eliminated variables are gone.
    #[test]
    fn exists_is_sound(e in rconj(), which in 0u8..4) {
        let vocab = shared_vocab();
        let d = logical();
        let e = build(&vocab, &e);
        let v = Var::named(&format!("w{which}"));
        let elim: VarSet = [v].into_iter().collect();
        let q = d.exists(&e, &elim);
        prop_assert!(!q.vars().contains(&v), "Q = {q} still mentions {v}");
        if !d.is_bottom(&e) {
            for atom in &q {
                prop_assert!(d.implies_atom(&e, atom), "{e} !=> {atom}");
            }
        }
    }

    /// The join is an upper bound in the lattice order (`le`).
    #[test]
    fn join_dominates_inputs(l in rconj(), r in rconj()) {
        let vocab = shared_vocab();
        let d = logical();
        let (el, er) = (build(&vocab, &l), build(&vocab, &r));
        let j = d.join(&el, &er);
        prop_assert!(d.le(&el, &j));
        prop_assert!(d.le(&er, &j));
    }

    /// The logical product is at least as precise as the reduced product:
    /// every (pure or mixed) fact the reduced join proves, the logical
    /// join proves too.
    #[test]
    fn logical_refines_reduced(l in rconj(), r in rconj()) {
        let vocab = shared_vocab();
        let dl = logical();
        let dr = ReducedProduct::new(AffineEq::new(), UfDomain::new());
        let (cl, cr) = (build(&vocab, &l), build(&vocab, &r));
        let jl = dl.join(&cl, &cr);
        let jr = dr.join(&dr.from_conj(&cl), &dr.from_conj(&cr));
        for atom in &dr.to_conj(&jr) {
            prop_assert!(
                dl.implies_atom(&jl, atom),
                "logical join {jl} misses reduced fact {atom}"
            );
        }
    }

    /// Meet (conjunction) is the greatest lower bound's upper half:
    /// `e ∧ atom` implies both `e` and `atom`.
    #[test]
    fn meet_is_lower_bound(e in rconj(), extra in (rterm(), rterm())) {
        let vocab = shared_vocab();
        let d = logical();
        let e = build(&vocab, &e);
        let atom = Atom::eq(extra.0.to_term(&vocab), extra.1.to_term(&vocab));
        let m = d.meet_atom(&e, &atom);
        prop_assert!(d.le(&m, &e));
        prop_assert!(d.implies_atom(&m, &atom));
    }

    /// Implication is reflexive on every generated element.
    #[test]
    fn le_is_reflexive(e in rconj()) {
        let vocab = shared_vocab();
        let d = logical();
        let e = build(&vocab, &e);
        prop_assert!(d.le(&e, &e));
    }

    /// A completeness witness for Theorem 3: facts common to both inputs
    /// *by construction* (a shared base conjunction, whose alien terms
    /// therefore occur in both elements) must survive the join.
    #[test]
    fn join_retains_common_base(base in rconj(), l in rconj(), r in rconj()) {
        let vocab = shared_vocab();
        let d = logical();
        let base = build(&vocab, &base);
        let el = base.and(&build(&vocab, &l));
        let er = base.and(&build(&vocab, &r));
        if d.is_bottom(&el) || d.is_bottom(&er) {
            return Ok(());
        }
        let j = d.join(&el, &er);
        for atom in &base {
            prop_assert!(
                d.implies_atom(&j, atom),
                "join {j} lost common fact {atom}"
            );
        }
    }

    /// Monotonicity of the join in the lattice order: joining with a
    /// weaker element yields a weaker (or equal) result.
    #[test]
    fn join_monotone_in_top(l in rconj(), r in rconj()) {
        let vocab = shared_vocab();
        let d = logical();
        let (el, er) = (build(&vocab, &l), build(&vocab, &r));
        let j = d.join(&el, &er);
        let top = d.join(&el, &d.top());
        // top is an upper bound of any join with el.
        prop_assert!(d.le(&j, &top) || d.equal_elems(&top, &d.top()));
    }
}
