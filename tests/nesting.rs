//! Nested logical products: `(AffineEq ⋈ UF) ⋈ Lists`.
//!
//! The logical product implements `AbstractDomain` itself (its signature is
//! the union of the component signatures), so the combination methodology
//! composes: three convex, stably infinite, pairwise-disjoint theories are
//! combined by nesting, exactly as Nelson–Oppen composes decision
//! procedures.

use cai_core::{AbstractDomain, LogicalProduct, Precision};
use cai_interp::{parse_program, Analyzer};
use cai_linarith::AffineEq;
use cai_lists::ListDomain;
use cai_term::parse::Vocab;
use cai_uf::UfDomain;

type Triple = LogicalProduct<LogicalProduct<AffineEq, UfDomain>, ListDomain>;

fn triple() -> Triple {
    LogicalProduct::new(
        LogicalProduct::new(AffineEq::new(), UfDomain::new()),
        ListDomain::new(),
    )
}

#[test]
fn triple_is_still_complete() {
    assert_eq!(triple().precision(), Precision::Complete);
}

#[test]
fn implication_across_three_theories() {
    let vocab = Vocab::standard();
    let d = triple();
    let e = vocab
        .parse_conj("l = cons(x + 1, t) & h = car(l) & g = F(h)")
        .unwrap();
    assert!(d.implies_atom(&e, &vocab.parse_atom("h = x + 1").unwrap()));
    assert!(d.implies_atom(&e, &vocab.parse_atom("g = F(x + 1)").unwrap()));
    assert!(!d.implies_atom(&e, &vocab.parse_atom("g = F(x)").unwrap()));
}

#[test]
fn program_over_three_theories() {
    let vocab = Vocab::standard();
    let p = parse_program(
        &vocab,
        "l := cons(x + 1, t);
         h := car(l);
         g := F(h - 1);
         assert(h = x + 1);
         assert(g = F(x));
         assert(cdr(l) = t);",
    )
    .unwrap();
    let d = triple();
    let analysis = Analyzer::new(&d).run(&p);
    let got: Vec<bool> = analysis.assertions.iter().map(|a| a.verified).collect();
    assert_eq!(got, [true, true, true]);
}

#[test]
fn join_across_three_theories() {
    // Two branches that agree only up to a mixed three-theory fact.
    let vocab = Vocab::standard();
    let d = triple();
    let a = vocab.parse_conj("l = cons(F(p + 1), t) & q = p").unwrap();
    let b = vocab.parse_conj("l = cons(F(r + 1), t) & q = r").unwrap();
    let j = d.join(&a, &b);
    assert!(
        d.implies_atom(&j, &vocab.parse_atom("l = cons(F(q + 1), t)").unwrap()),
        "join = {j}"
    );
    assert!(!d.implies_atom(&j, &vocab.parse_atom("q = p").unwrap()));
}

#[test]
fn loop_with_lists_and_arithmetic() {
    let vocab = Vocab::standard();
    let p = parse_program(
        &vocab,
        "n := 0;
         l := cons(n, nil);
         while (*) {
            n := n + 1;
            l := cons(n, l);
         }
         assert(car(l) = n);",
    )
    .unwrap();
    let d = triple();
    let analysis = Analyzer::new(&d).run(&p);
    assert!(!analysis.diverged);
    assert!(analysis.assertions[0].verified, "car(l) = n not found");
}
