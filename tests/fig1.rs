//! Figure 1 of the paper: the motivating program.
//!
//! Claimed precision ladder:
//!
//! | analysis                       | assertions verified |
//! |--------------------------------|---------------------|
//! | linear equalities alone        | 1 (a2 = 2·a1)       |
//! | uninterpreted functions alone  | 1 (b2 = F(b1))      |
//! | direct product                 | 2 (a, b)            |
//! | reduced product                | 3 (a, b, c)         |
//! | logical product                | 4 (all)             |

use cai_core::{AbstractDomain, LogicalProduct, ReducedProduct};
use cai_interp::{herbrand_view, parse_program, Analyzer, Program};
use cai_linarith::AffineEq;
use cai_term::parse::Vocab;
use cai_uf::UfDomain;

const FIG1: &str = "
    a1 := 0; a2 := 0;
    b1 := 1; b2 := F(1);
    c1 := 2; c2 := 2;
    d1 := 3; d2 := F(4);
    while (b1 < b2) {
        a1 := a1 + 1; a2 := a2 + 2;
        b1 := F(b1);  b2 := F(b2);
        c1 := F(2*c1 - c2); c2 := F(c2);
        d1 := F(1 + d1); d2 := F(d2 + 1);
    }
    assert(a2 = 2*a1);
    assert(b2 = F(b1));
    assert(c2 = c1);
    assert(d2 = F(d1 + 1));
";

fn program(vocab: &Vocab) -> Program {
    parse_program(vocab, FIG1).expect("figure 1 parses")
}

fn verdicts<D: AbstractDomain>(d: &D, p: &Program, herbrand: bool) -> Vec<bool> {
    let analyzer = if herbrand {
        Analyzer::new(d).with_view(herbrand_view)
    } else {
        Analyzer::new(d)
    };
    let analysis = analyzer.run(p);
    assert!(!analysis.diverged, "analysis diverged");
    analysis.assertions.iter().map(|a| a.verified).collect()
}

#[test]
fn linear_equalities_alone_prove_assertion_a() {
    let vocab = Vocab::standard();
    let p = program(&vocab);
    let got = verdicts(&AffineEq::new(), &p, false);
    assert_eq!(got, [true, false, false, false]);
}

#[test]
fn uninterpreted_functions_alone_prove_assertion_b() {
    let vocab = Vocab::standard();
    let p = program(&vocab);
    let got = verdicts(&UfDomain::new(), &p, true);
    assert_eq!(got, [false, true, false, false]);
}

#[test]
fn direct_product_proves_a_and_b() {
    // The direct product "discovers in one shot the information found
    // separately by the component analyses": a fact holds iff some
    // component analysis proves it.
    let vocab = Vocab::standard();
    let p = program(&vocab);
    let lin = verdicts(&AffineEq::new(), &p, false);
    let uf = verdicts(&UfDomain::new(), &p, true);
    let direct: Vec<bool> = lin.iter().zip(&uf).map(|(a, b)| *a || *b).collect();
    assert_eq!(direct, [true, true, false, false]);
}

#[test]
fn reduced_product_proves_a_b_c() {
    let vocab = Vocab::standard();
    let p = program(&vocab);
    let d = ReducedProduct::new(AffineEq::new(), UfDomain::new());
    let got = verdicts(&d, &p, false);
    assert_eq!(got, [true, true, true, false]);
}

#[test]
fn logical_product_proves_all_four() {
    let vocab = Vocab::standard();
    let p = program(&vocab);
    let d = LogicalProduct::new(AffineEq::new(), UfDomain::new());
    let got = verdicts(&d, &p, false);
    assert_eq!(got, [true, true, true, true]);
}
