//! Figure 4 of the paper: the program distinguishing the *strict* logical
//! product from the (implementable) logical product.
//!
//! ```text
//! if (a < b) { x := F(a+1); y := a; } else { x := F(b+1); y := b; }
//! assert(x = F(y + 1));                          // logical product: yes
//! assert(F(a) + F(b) = F(y) + F(a + b - y));     // strict only: no
//! ```

use cai_core::LogicalProduct;
use cai_interp::{parse_program, Analyzer};
use cai_linarith::{AffineEq, Polyhedra};
use cai_term::parse::Vocab;
use cai_uf::UfDomain;

const FIG4: &str = "
    if (a < b) {
        x := F(a + 1);
        y := a;
    } else {
        x := F(b + 1);
        y := b;
    }
    assert(x = F(y + 1));
    assert(F(a) + F(b) = F(y) + F(a + b - y));
";

#[test]
fn logical_product_proves_first_assertion_only() {
    let vocab = Vocab::standard();
    let p = parse_program(&vocab, FIG4).unwrap();
    let d = LogicalProduct::new(AffineEq::new(), UfDomain::new());
    let analysis = Analyzer::new(&d).run(&p);
    let got: Vec<bool> = analysis.assertions.iter().map(|a| a.verified).collect();
    assert_eq!(got, [true, false]);
}

#[test]
fn polyhedra_variant_agrees() {
    // The branch conditions are inequalities; with the polyhedra component
    // the result is the same (the mixed fact does not need them).
    let vocab = Vocab::standard();
    let p = parse_program(&vocab, FIG4).unwrap();
    let d = LogicalProduct::new(Polyhedra::new(), UfDomain::new());
    let analysis = Analyzer::new(&d).run(&p);
    let got: Vec<bool> = analysis.assertions.iter().map(|a| a.verified).collect();
    assert_eq!(got, [true, false]);
}

#[test]
fn second_assertion_holds_under_extra_knowledge() {
    // Sanity check that the second assertion is not simply unprovable for
    // the implementation: if the branch information is retained exactly
    // (no join), each branch proves its instance.
    let vocab = Vocab::standard();
    let d = LogicalProduct::new(AffineEq::new(), UfDomain::new());
    use cai_core::AbstractDomain;
    let branch1 = d.from_conj(&vocab.parse_conj("x = F(a + 1) & y = a").unwrap());
    let q = vocab
        .parse_atom("F(a) + F(b) = F(y) + F(a + b - y)")
        .unwrap();
    assert!(d.implies_atom(&branch1, &q));
    let branch2 = d.from_conj(&vocab.parse_conj("x = F(b + 1) & y = b").unwrap());
    assert!(d.implies_atom(&branch2, &q));
}
