//! Widening over the logical product (§4.3): the combined widening is
//! built by the same construction as the combined join, and must
//! terminate loops even when a component lattice (polyhedra) has infinite
//! ascending chains.

use cai_core::{AbstractDomain, LogicalProduct};
use cai_interp::{parse_program, Analyzer};
use cai_linarith::Polyhedra;
use cai_term::parse::Vocab;
use cai_uf::UfDomain;

#[test]
fn combined_widening_terminates_unbounded_loop() {
    let vocab = Vocab::standard();
    let p = parse_program(
        &vocab,
        "x := 0; y := F(x);
         while (x < 1000) {
             x := x + 1;
             y := F(x);
         }
         assert(x >= 1000);
         assert(y = F(x));",
    )
    .unwrap();
    let d = LogicalProduct::new(Polyhedra::new(), UfDomain::new());
    let analysis = Analyzer::new(&d).widen_delay(3).max_iterations(30).run(&p);
    assert!(
        !analysis.diverged,
        "combined widening failed to stabilize the loop"
    );
    let got: Vec<bool> = analysis.assertions.iter().map(|a| a.verified).collect();
    // The exit condition gives x >= 1000; the mixed invariant y = F(x)
    // survives both the widening and the join.
    assert_eq!(
        got,
        [true, true],
        "iterations: {:?}",
        analysis.loop_iterations
    );
}

#[test]
fn widening_result_is_upper_bound_of_inputs() {
    let vocab = Vocab::standard();
    let d = LogicalProduct::new(Polyhedra::new(), UfDomain::new());
    let a = d.from_conj(&vocab.parse_conj("0 <= x & x <= 1 & y = F(x + 1)").unwrap());
    let b = d.from_conj(&vocab.parse_conj("0 <= x & x <= 2 & y = F(x + 1)").unwrap());
    let w = d.widen(&a, &b);
    assert!(d.le(&a, &w), "a ⋢ widen(a, b): {w}");
    assert!(d.le(&b, &w), "b ⋢ widen(a, b): {w}");
    // The stable constraints survive.
    assert!(d.implies_atom(&w, &vocab.parse_atom("0 <= x").unwrap()));
    assert!(d.implies_atom(&w, &vocab.parse_atom("y = F(x + 1)").unwrap()));
    // The unstable upper bound is dropped.
    assert!(!d.implies_atom(&w, &vocab.parse_atom("x <= 2").unwrap()));
}
