//! Section 5 of the paper: reducing the commutative-functions lattice and
//! the multi-arity uninterpreted-functions lattice to the logical product
//! of a single-unary-UF lattice and linear arithmetic.

use cai_core::reduce::{EncodeMode, UnaryEncoder};
use cai_core::LogicalProduct;
use cai_interp::{parse_program, Analyzer};
use cai_linarith::AffineEq;
use cai_num::SplitMix64;
use cai_term::parse::Vocab;
use cai_uf::UfDomain;

fn product() -> LogicalProduct<AffineEq, UfDomain> {
    LogicalProduct::new(AffineEq::new(), UfDomain::new())
}

/// §5.1: after encoding, commutativity of the source functions is free.
#[test]
fn commutative_program_analysis() {
    let vocab = Vocab::standard();
    let p = parse_program(
        &vocab,
        "x := Fadd(a, b);
         y := Fadd(b, a);
         z := Fmul(Fadd(a, b), c);
         w := Fmul(c, Fadd(b, a));
         assert(x = y);
         assert(z = w);
         assert(x = z);",
    )
    .unwrap();
    let mut enc = UnaryEncoder::new(EncodeMode::Commutative);
    let encoded = p.map_terms(&mut |t| enc.encode_term(t));
    let d = product();
    let analysis = Analyzer::new(&d).run(&encoded);
    let got: Vec<bool> = analysis.assertions.iter().map(|a| a.verified).collect();
    // Commutativity instances hold; the unrelated fact does not.
    assert_eq!(got, [true, true, false]);
}

/// §5.2: multi-arity functions encode faithfully — argument order still
/// matters, congruence still works.
#[test]
fn multi_arity_program_analysis() {
    let vocab = Vocab::standard();
    let p = parse_program(
        &vocab,
        "assume(a = b);
         x := H3(a, c, d);
         y := H3(b, c, d);
         z := H3(c, a, d);
         assert(x = y);
         assert(x = z);",
    )
    .unwrap();
    let mut enc = UnaryEncoder::new(EncodeMode::MultiArity);
    let encoded = p.map_terms(&mut |t| enc.encode_term(t));
    let d = product();
    let analysis = Analyzer::new(&d).run(&encoded);
    let got: Vec<bool> = analysis.assertions.iter().map(|a| a.verified).collect();
    assert_eq!(got, [true, false]);
}

/// A loop invariant through the encoding: the combination discovers facts
/// about encoded commutative applications across iterations.
#[test]
fn commutative_loop_invariant() {
    let vocab = Vocab::standard();
    let p = parse_program(
        &vocab,
        "u := Gc(p, q);
         v := Gc(q, p);
         while (*) {
             u := Gc(u, r);
             v := Gc(r, v);
         }
         assert(u = v);",
    )
    .unwrap();
    let mut enc = UnaryEncoder::new(EncodeMode::Commutative);
    let encoded = p.map_terms(&mut |t| enc.encode_term(t));
    let d = product();
    let analysis = Analyzer::new(&d).run(&encoded);
    assert!(!analysis.diverged);
    assert!(analysis.assertions[0].verified, "u = v not found");
}

// ---- Claim 2 as property tests -------------------------------------------

/// The §5 source term language: variables and binary applications.
#[derive(Clone, Debug)]
enum SrcTerm {
    Var(u8),
    App(u8, Box<SrcTerm>, Box<SrcTerm>),
}

impl SrcTerm {
    fn to_term(&self, vocab: &Vocab) -> cai_term::Term {
        match self {
            SrcTerm::Var(i) => cai_term::Term::var_named(&format!("v{i}")),
            SrcTerm::App(g, a, b) => {
                let f = vocab.function(&format!("G{g}"), 2).unwrap();
                cai_term::Term::app(f, vec![a.to_term(vocab), b.to_term(vocab)])
            }
        }
    }

    /// Syntactic equality modulo commutativity of every application.
    fn comm_eq(&self, other: &SrcTerm) -> bool {
        match (self, other) {
            (SrcTerm::Var(a), SrcTerm::Var(b)) => a == b,
            (SrcTerm::App(f, a1, a2), SrcTerm::App(g, b1, b2)) => {
                f == g && ((a1.comm_eq(b1) && a2.comm_eq(b2)) || (a1.comm_eq(b2) && a2.comm_eq(b1)))
            }
            _ => false,
        }
    }

    /// A commutativity-respecting variant: randomly swapped arguments.
    fn swapped(&self, flips: &mut impl Iterator<Item = bool>) -> SrcTerm {
        match self {
            SrcTerm::Var(i) => SrcTerm::Var(*i),
            SrcTerm::App(g, a, b) => {
                let (x, y) = (a.swapped(flips), b.swapped(flips));
                if flips.next().unwrap_or(false) {
                    SrcTerm::App(*g, Box::new(y), Box::new(x))
                } else {
                    SrcTerm::App(*g, Box::new(x), Box::new(y))
                }
            }
        }
    }
}

/// A random source term over `v0..v3` and `G0..G2` with the given depth
/// budget (mirrors the old recursive generation: leaves get likelier as
/// the budget shrinks).
fn rand_src_term(g: &mut SplitMix64, depth: usize) -> SrcTerm {
    if depth == 0 || g.ratio(1, 3) {
        return SrcTerm::Var(g.below(4) as u8);
    }
    SrcTerm::App(
        g.below(3) as u8,
        Box::new(rand_src_term(g, depth - 1)),
        Box::new(rand_src_term(g, depth - 1)),
    )
}

const CLAIM2_CASES: usize = 128;

/// Claim 2 (§5.1), soundness direction: commutativity-equal source
/// terms have structurally equal images.
#[test]
fn claim2_commutative_sound() {
    let mut g = SplitMix64::new(0xF001);
    let vocab = Vocab::standard();
    for _ in 0..CLAIM2_CASES {
        let t = rand_src_term(&mut g, 3);
        let flips: Vec<bool> = (0..16).map(|_| g.ratio(1, 2)).collect();
        let mut enc = UnaryEncoder::new(EncodeMode::Commutative);
        let swapped = t.swapped(&mut flips.into_iter());
        let m1 = enc.encode_term(&t.to_term(&vocab));
        let m2 = enc.encode_term(&swapped.to_term(&vocab));
        assert_eq!(m1, m2, "t={t:?}");
    }
}

/// Claim 2 (§5.1), injectivity direction: distinct source terms
/// (modulo commutativity) have distinct images.
#[test]
fn claim2_commutative_injective() {
    let mut g = SplitMix64::new(0xF002);
    let vocab = Vocab::standard();
    for _ in 0..CLAIM2_CASES {
        let a = rand_src_term(&mut g, 3);
        let b = rand_src_term(&mut g, 3);
        let mut enc = UnaryEncoder::new(EncodeMode::Commutative);
        let ma = enc.encode_term(&a.to_term(&vocab));
        let mb = enc.encode_term(&b.to_term(&vocab));
        assert_eq!(a.comm_eq(&b), ma == mb, "a={a:?} b={b:?}");
    }
}

/// Claim 2 (§5.2): the multi-arity encoding is injective on syntax.
#[test]
fn claim2_multiarity_injective() {
    let mut g = SplitMix64::new(0xF003);
    let vocab = Vocab::standard();
    for _ in 0..CLAIM2_CASES {
        let a = rand_src_term(&mut g, 3);
        let b = rand_src_term(&mut g, 3);
        let mut enc = UnaryEncoder::new(EncodeMode::MultiArity);
        let (ta, tb) = (a.to_term(&vocab), b.to_term(&vocab));
        let ma = enc.encode_term(&ta);
        let mb = enc.encode_term(&tb);
        assert_eq!(ta == tb, ma == mb, "a={a:?} b={b:?}");
    }
}
