//! Section 5 of the paper: reducing the commutative-functions lattice and
//! the multi-arity uninterpreted-functions lattice to the logical product
//! of a single-unary-UF lattice and linear arithmetic.

use cai_core::reduce::{EncodeMode, UnaryEncoder};
use cai_core::LogicalProduct;
use cai_interp::{parse_program, Analyzer};
use cai_linarith::AffineEq;
use cai_term::parse::Vocab;
use cai_uf::UfDomain;
use proptest::prelude::*;

fn product() -> LogicalProduct<AffineEq, UfDomain> {
    LogicalProduct::new(AffineEq::new(), UfDomain::new())
}

/// §5.1: after encoding, commutativity of the source functions is free.
#[test]
fn commutative_program_analysis() {
    let vocab = Vocab::standard();
    let p = parse_program(
        &vocab,
        "x := Fadd(a, b);
         y := Fadd(b, a);
         z := Fmul(Fadd(a, b), c);
         w := Fmul(c, Fadd(b, a));
         assert(x = y);
         assert(z = w);
         assert(x = z);",
    )
    .unwrap();
    let mut enc = UnaryEncoder::new(EncodeMode::Commutative);
    let encoded = p.map_terms(&mut |t| enc.encode_term(t));
    let d = product();
    let analysis = Analyzer::new(&d).run(&encoded);
    let got: Vec<bool> = analysis.assertions.iter().map(|a| a.verified).collect();
    // Commutativity instances hold; the unrelated fact does not.
    assert_eq!(got, [true, true, false]);
}

/// §5.2: multi-arity functions encode faithfully — argument order still
/// matters, congruence still works.
#[test]
fn multi_arity_program_analysis() {
    let vocab = Vocab::standard();
    let p = parse_program(
        &vocab,
        "assume(a = b);
         x := H3(a, c, d);
         y := H3(b, c, d);
         z := H3(c, a, d);
         assert(x = y);
         assert(x = z);",
    )
    .unwrap();
    let mut enc = UnaryEncoder::new(EncodeMode::MultiArity);
    let encoded = p.map_terms(&mut |t| enc.encode_term(t));
    let d = product();
    let analysis = Analyzer::new(&d).run(&encoded);
    let got: Vec<bool> = analysis.assertions.iter().map(|a| a.verified).collect();
    assert_eq!(got, [true, false]);
}

/// A loop invariant through the encoding: the combination discovers facts
/// about encoded commutative applications across iterations.
#[test]
fn commutative_loop_invariant() {
    let vocab = Vocab::standard();
    let p = parse_program(
        &vocab,
        "u := Gc(p, q);
         v := Gc(q, p);
         while (*) {
             u := Gc(u, r);
             v := Gc(r, v);
         }
         assert(u = v);",
    )
    .unwrap();
    let mut enc = UnaryEncoder::new(EncodeMode::Commutative);
    let encoded = p.map_terms(&mut |t| enc.encode_term(t));
    let d = product();
    let analysis = Analyzer::new(&d).run(&encoded);
    assert!(!analysis.diverged);
    assert!(analysis.assertions[0].verified, "u = v not found");
}

// ---- Claim 2 as property tests -------------------------------------------

/// The §5 source term language: variables and binary applications.
#[derive(Clone, Debug)]
enum SrcTerm {
    Var(u8),
    App(u8, Box<SrcTerm>, Box<SrcTerm>),
}

impl SrcTerm {
    fn to_term(&self, vocab: &Vocab) -> cai_term::Term {
        match self {
            SrcTerm::Var(i) => cai_term::Term::var_named(&format!("v{i}")),
            SrcTerm::App(g, a, b) => {
                let f = vocab.function(&format!("G{g}"), 2).unwrap();
                cai_term::Term::app(f, vec![a.to_term(vocab), b.to_term(vocab)])
            }
        }
    }

    /// Syntactic equality modulo commutativity of every application.
    fn comm_eq(&self, other: &SrcTerm) -> bool {
        match (self, other) {
            (SrcTerm::Var(a), SrcTerm::Var(b)) => a == b,
            (SrcTerm::App(f, a1, a2), SrcTerm::App(g, b1, b2)) => {
                f == g
                    && ((a1.comm_eq(b1) && a2.comm_eq(b2))
                        || (a1.comm_eq(b2) && a2.comm_eq(b1)))
            }
            _ => false,
        }
    }

    /// A commutativity-respecting variant: randomly swapped arguments.
    fn swapped(&self, flips: &mut impl Iterator<Item = bool>) -> SrcTerm {
        match self {
            SrcTerm::Var(i) => SrcTerm::Var(*i),
            SrcTerm::App(g, a, b) => {
                let (x, y) = (a.swapped(flips), b.swapped(flips));
                if flips.next().unwrap_or(false) {
                    SrcTerm::App(*g, Box::new(y), Box::new(x))
                } else {
                    SrcTerm::App(*g, Box::new(x), Box::new(y))
                }
            }
        }
    }
}

fn src_term() -> impl Strategy<Value = SrcTerm> {
    let leaf = (0u8..4).prop_map(SrcTerm::Var);
    leaf.prop_recursive(3, 12, 2, |inner| {
        ((0u8..3), inner.clone(), inner)
            .prop_map(|(g, a, b)| SrcTerm::App(g, Box::new(a), Box::new(b)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Claim 2 (§5.1), soundness direction: commutativity-equal source
    /// terms have structurally equal images.
    #[test]
    fn claim2_commutative_sound(t in src_term(), flips in proptest::collection::vec(any::<bool>(), 16)) {
        let vocab = Vocab::standard();
        let mut enc = UnaryEncoder::new(EncodeMode::Commutative);
        let swapped = t.swapped(&mut flips.into_iter());
        let m1 = enc.encode_term(&t.to_term(&vocab));
        let m2 = enc.encode_term(&swapped.to_term(&vocab));
        prop_assert_eq!(m1, m2);
    }

    /// Claim 2 (§5.1), injectivity direction: distinct source terms
    /// (modulo commutativity) have distinct images.
    #[test]
    fn claim2_commutative_injective(a in src_term(), b in src_term()) {
        let vocab = Vocab::standard();
        let mut enc = UnaryEncoder::new(EncodeMode::Commutative);
        let ma = enc.encode_term(&a.to_term(&vocab));
        let mb = enc.encode_term(&b.to_term(&vocab));
        prop_assert_eq!(a.comm_eq(&b), ma == mb, "a={:?} b={:?}", a, b);
    }

    /// Claim 2 (§5.2): the multi-arity encoding is injective on syntax.
    #[test]
    fn claim2_multiarity_injective(a in src_term(), b in src_term()) {
        let vocab = Vocab::standard();
        let mut enc = UnaryEncoder::new(EncodeMode::MultiArity);
        let (ta, tb) = (a.to_term(&vocab), b.to_term(&vocab));
        let ma = enc.encode_term(&ta);
        let mb = enc.encode_term(&tb);
        prop_assert_eq!(ta == tb, ma == mb);
    }
}
